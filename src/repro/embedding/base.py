"""The solver interface shared by BBE, MBBE, the baselines and the oracles."""

from __future__ import annotations

import abc
import contextvars
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..config import FlowConfig
from ..constraints.base import Constraint, ConstraintSet
from ..exceptions import NoSolutionError, SolverError
from ..network.cloud import CloudNetwork
from ..sfc.dag import DagSfc
from ..types import NodeId
from ..utils.rng import RngStream
from .costing import CostBreakdown, compute_cost
from .feasibility import verify_embedding
from .mapping import Embedding

__all__ = ["EmbeddingResult", "Embedder"]

#: The constraint set of the *current* embed call. A context variable, not
#: an instance attribute: ``asyncio.to_thread`` / executors run each call
#: in its own copied context, so concurrent embeds on one (cached) solver
#: instance can never observe each other's constraints.
_ACTIVE_CONSTRAINTS: contextvars.ContextVar[ConstraintSet] = contextvars.ContextVar(
    "repro_active_constraints", default=ConstraintSet.EMPTY
)


@dataclass(frozen=True)
class EmbeddingResult:
    """Outcome of one embedding attempt."""

    solver: str
    success: bool
    embedding: Embedding | None
    cost: CostBreakdown | None
    runtime: float
    #: solver-specific counters (sub-solutions explored, iterations, …).
    stats: dict[str, Any] = field(default_factory=dict)
    #: failure reason when success is False.
    reason: str | None = None

    @property
    def total_cost(self) -> float:
        """Objective value; ``inf`` for failed attempts."""
        if self.cost is None:
            return float("inf")
        return self.cost.total


class Embedder(abc.ABC):
    """Abstract DAG-SFC embedder.

    Concrete solvers implement :meth:`_solve` returning a raw
    :class:`Embedding`; the public :meth:`embed` wraps it with timing,
    verification against the shared referee, and cost evaluation, so all
    algorithms are compared under identical accounting.

    Constraint-aware solvers read :attr:`constraints` during
    :meth:`_solve` to prune candidates and price links; solvers that
    ignore it are still correct, because :meth:`embed` verifies every
    returned embedding against the full constraint set and reports a
    violation as ``success=False``.
    """

    #: short identifier used in reports ("BBE", "MBBE", "RANV", …).
    name: str = "abstract"

    @property
    def constraints(self) -> ConstraintSet:
        """The constraint set of the in-flight :meth:`embed` call."""
        return _ACTIVE_CONSTRAINTS.get()

    @abc.abstractmethod
    def _solve(
        self,
        network: CloudNetwork,
        dag: DagSfc,
        source: NodeId,
        dest: NodeId,
        flow: FlowConfig,
        rng: RngStream,
        stats: dict[str, Any],
    ) -> Embedding:
        """Produce a candidate embedding or raise :class:`NoSolutionError`."""

    def embed(
        self,
        network: CloudNetwork,
        dag: DagSfc,
        source: NodeId,
        dest: NodeId,
        flow: FlowConfig | None = None,
        rng: RngStream = None,
        *,
        constraints: "ConstraintSet | Iterable[Constraint] | None" = None,
    ) -> EmbeddingResult:
        """Solve one instance and return a verified, costed result.

        Never raises for "no solution found": that is reported through
        ``success=False``. Genuine bugs (invalid embeddings) do raise.

        With a non-empty ``constraints`` set, the solve runs a bounded
        LARAC-style escalation loop: solve under the current constraint
        pricing, verify the full set, and — when a violated constraint
        offers a repriced copy of itself (e.g. a delay budget raising its
        Lagrangian multiplier) — re-solve under the new pricing, up to
        :attr:`ConstraintSet.MAX_REPRICE_ROUNDS` rounds. A violation that
        survives the loop is reported as ``success=False`` with a
        ``constraint:`` reason, never as an exception.
        """
        flow = flow if flow is not None else FlowConfig()
        stats: dict[str, Any] = {}
        start = time.perf_counter()
        cset = ConstraintSet.coerce(constraints)
        if not cset:
            # The historical (constraint-free) path, bit-identical.
            try:
                embedding = self._solve(network, dag, source, dest, flow, rng, stats)
            except (NoSolutionError, SolverError) as exc:
                return EmbeddingResult(
                    solver=self.name,
                    success=False,
                    embedding=None,
                    cost=None,
                    runtime=time.perf_counter() - start,
                    stats=stats,
                    reason=str(exc),
                )
            runtime = time.perf_counter() - start
            # The referee raises on solver bugs; do not catch.
            verify_embedding(network, embedding, flow)
            cost = compute_cost(network, embedding, flow)
            return EmbeddingResult(
                solver=self.name,
                success=True,
                embedding=embedding,
                cost=cost,
                runtime=runtime,
                stats=stats,
            )

        active = cset
        last_violation: str | None = None
        for attempt in range(1, ConstraintSet.MAX_REPRICE_ROUNDS + 1):
            stats["constraint_rounds"] = attempt
            token = _ACTIVE_CONSTRAINTS.set(active)
            try:
                embedding = self._solve(network, dag, source, dest, flow, rng, stats)
            except (NoSolutionError, SolverError) as exc:
                return EmbeddingResult(
                    solver=self.name,
                    success=False,
                    embedding=None,
                    cost=None,
                    runtime=time.perf_counter() - start,
                    stats=stats,
                    reason=str(exc),
                )
            finally:
                _ACTIVE_CONSTRAINTS.reset(token)
            # Core eq. 2–6 violations are solver bugs and raise; extra
            # constraints are operator rules the solver may miss, handled
            # through the reprice loop below.
            verify_embedding(network, embedding, flow)
            exc_or_none = cset.check(network, embedding, flow)
            if exc_or_none is None:
                cost = compute_cost(network, embedding, flow)
                return EmbeddingResult(
                    solver=self.name,
                    success=True,
                    embedding=embedding,
                    cost=cost,
                    runtime=time.perf_counter() - start,
                    stats=stats,
                )
            last_violation = f"constraint:{exc_or_none.constraint}: {exc_or_none}"
            repriced = active.repriced(network, embedding, flow)
            if repriced is None:
                break
            active = repriced
        return EmbeddingResult(
            solver=self.name,
            success=False,
            embedding=None,
            cost=None,
            runtime=time.perf_counter() - start,
            stats=stats,
            reason=last_violation or "constraint violated",
        )
