"""The solver interface shared by BBE, MBBE, the baselines and the oracles."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any

from ..config import FlowConfig
from ..exceptions import NoSolutionError, SolverError
from ..network.cloud import CloudNetwork
from ..sfc.dag import DagSfc
from ..types import NodeId
from ..utils.rng import RngStream
from .costing import CostBreakdown, compute_cost
from .feasibility import verify_embedding
from .mapping import Embedding

__all__ = ["EmbeddingResult", "Embedder"]


@dataclass(frozen=True)
class EmbeddingResult:
    """Outcome of one embedding attempt."""

    solver: str
    success: bool
    embedding: Embedding | None
    cost: CostBreakdown | None
    runtime: float
    #: solver-specific counters (sub-solutions explored, iterations, …).
    stats: dict[str, Any] = field(default_factory=dict)
    #: failure reason when success is False.
    reason: str | None = None

    @property
    def total_cost(self) -> float:
        """Objective value; ``inf`` for failed attempts."""
        if self.cost is None:
            return float("inf")
        return self.cost.total


class Embedder(abc.ABC):
    """Abstract DAG-SFC embedder.

    Concrete solvers implement :meth:`_solve` returning a raw
    :class:`Embedding`; the public :meth:`embed` wraps it with timing,
    verification against the shared referee, and cost evaluation, so all
    algorithms are compared under identical accounting.
    """

    #: short identifier used in reports ("BBE", "MBBE", "RANV", …).
    name: str = "abstract"

    @abc.abstractmethod
    def _solve(
        self,
        network: CloudNetwork,
        dag: DagSfc,
        source: NodeId,
        dest: NodeId,
        flow: FlowConfig,
        rng: RngStream,
        stats: dict[str, Any],
    ) -> Embedding:
        """Produce a candidate embedding or raise :class:`NoSolutionError`."""

    def embed(
        self,
        network: CloudNetwork,
        dag: DagSfc,
        source: NodeId,
        dest: NodeId,
        flow: FlowConfig | None = None,
        rng: RngStream = None,
    ) -> EmbeddingResult:
        """Solve one instance and return a verified, costed result.

        Never raises for "no solution found": that is reported through
        ``success=False``. Genuine bugs (invalid embeddings) do raise.
        """
        flow = flow if flow is not None else FlowConfig()
        stats: dict[str, Any] = {}
        start = time.perf_counter()
        try:
            embedding = self._solve(network, dag, source, dest, flow, rng, stats)
        except (NoSolutionError, SolverError) as exc:
            return EmbeddingResult(
                solver=self.name,
                success=False,
                embedding=None,
                cost=None,
                runtime=time.perf_counter() - start,
                stats=stats,
                reason=str(exc),
            )
        runtime = time.perf_counter() - start
        # The referee raises on solver bugs; do not catch.
        verify_embedding(network, embedding, flow)
        cost = compute_cost(network, embedding, flow)
        return EmbeddingResult(
            solver=self.name,
            success=True,
            embedding=embedding,
            cost=cost,
            runtime=runtime,
            stats=stats,
        )
