"""Feasibility verification: completeness (eq. 4–6) and capacity (eq. 2–3).

Solvers produce embeddings; this module is the referee. Every returned
solution in the simulation harness passes through :func:`verify_embedding`,
so a buggy heuristic can never silently report an invalid solution.

The eq. 2–6 *math* lives in :func:`check_completeness` and
:func:`check_capacity`; :func:`verify_embedding` delegates to the
constraint framework's :func:`~repro.constraints.core.referee`, which
runs those checks as the built-in core constraints and then evaluates
whatever extra constraints the request registered (delay budgets,
anti-affinity, zone caps — see ``docs/constraints.md``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import FlowConfig
from ..exceptions import (
    IncompleteEmbeddingError,
    InfeasibleEmbeddingError,
)
from ..network.cloud import CloudNetwork
from ..types import DUMMY_VNF
from .costing import charged_link_uses, vnf_uses
from .mapping import Embedding

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..constraints.base import ConstraintSet

__all__ = ["check_completeness", "check_capacity", "verify_embedding"]

_EPS = 1e-9


def check_completeness(network: CloudNetwork, embedding: Embedding) -> None:
    """Raise :class:`IncompleteEmbeddingError` unless eq. 4–6 hold.

    * eq. 4 — every position of the DAG-SFC is placed exactly once, on a
      node hosting the required category;
    * eq. 5 — every inter-layer meta-path has a real-path whose endpoints
      match the placements of its two positions;
    * eq. 6 — likewise for every inner-layer meta-path.

    Real-paths must also be walks over existing links.
    """
    s = embedding.stretched()
    dag = embedding.dag
    graph = network.graph

    if not graph.has_node(embedding.source):
        raise IncompleteEmbeddingError(f"source node {embedding.source} not in network")
    if not graph.has_node(embedding.dest):
        raise IncompleteEmbeddingError(f"destination node {embedding.dest} not in network")

    # eq. 4: placements.
    expected = list(dag.positions())
    for pos in expected:
        if pos not in embedding.placements:
            raise IncompleteEmbeddingError(f"position {tuple(pos)} is not placed")
        node = embedding.placements[pos]
        vnf = s.vnf_at(pos)
        if vnf != DUMMY_VNF and not network.has_vnf(node, vnf):
            raise IncompleteEmbeddingError(
                f"node {node} does not host category {vnf} required at {tuple(pos)}"
            )
    extra = set(embedding.placements) - set(expected)
    if extra:
        raise IncompleteEmbeddingError(f"placements for unknown positions: {sorted(extra)}")

    # eq. 5: inter-layer meta-paths (including the tail to the destination).
    for l in range(1, dag.omega + 2):
        for mp in s.inter_layer_metapaths(l):
            path = embedding.inter_paths.get(mp.dst)
            if path is None:
                raise IncompleteEmbeddingError(
                    f"inter-layer meta-path into {tuple(mp.dst)} is missing"
                )
            path.validate(graph)
            if path.source != embedding.node_of(mp.src):
                raise IncompleteEmbeddingError(
                    f"inter-layer path into {tuple(mp.dst)} starts at {path.source}, "
                    f"expected {embedding.node_of(mp.src)}"
                )
            if path.target != embedding.node_of(mp.dst):
                raise IncompleteEmbeddingError(
                    f"inter-layer path into {tuple(mp.dst)} ends at {path.target}, "
                    f"expected {embedding.node_of(mp.dst)}"
                )

    # eq. 6: inner-layer meta-paths.
    for l in range(1, dag.omega + 1):
        for mp in s.inner_layer_metapaths(l):
            path = embedding.inner_paths.get(mp.src)
            if path is None:
                raise IncompleteEmbeddingError(
                    f"inner-layer meta-path out of {tuple(mp.src)} is missing"
                )
            path.validate(graph)
            if path.source != embedding.node_of(mp.src):
                raise IncompleteEmbeddingError(
                    f"inner-layer path out of {tuple(mp.src)} starts at {path.source}, "
                    f"expected {embedding.node_of(mp.src)}"
                )
            if path.target != embedding.node_of(mp.dst):
                raise IncompleteEmbeddingError(
                    f"inner-layer path out of {tuple(mp.src)} ends at {path.target}, "
                    f"expected {embedding.node_of(mp.dst)}"
                )

    # No stray instantiated paths.
    valid_inter = {
        mp.dst for l in range(1, dag.omega + 2) for mp in s.inter_layer_metapaths(l)
    }
    stray_inter = set(embedding.inter_paths) - valid_inter
    if stray_inter:
        raise IncompleteEmbeddingError(f"stray inter-layer paths: {sorted(stray_inter)}")
    valid_inner = {
        mp.src for l in range(1, dag.omega + 1) for mp in s.inner_layer_metapaths(l)
    }
    stray_inner = set(embedding.inner_paths) - valid_inner
    if stray_inner:
        raise IncompleteEmbeddingError(f"stray inner-layer paths: {sorted(stray_inner)}")


def check_capacity(
    network: CloudNetwork, embedding: Embedding, flow: FlowConfig
) -> None:
    """Raise :class:`InfeasibleEmbeddingError` unless eq. 2–3 hold.

    VNF instances process ``alpha_{v,i} * R`` traffic; links carry
    ``alpha_e * R`` (multicast charged once per layer, matching the cost
    model's bandwidth semantics).
    """
    rate = flow.rate
    for (node, vnf), count in vnf_uses(embedding).items():
        inst = network.instance(node, vnf)
        if count * rate > inst.capacity + _EPS:
            raise InfeasibleEmbeddingError(
                f"VNF {vnf}@{node}: demand {count * rate} exceeds capacity {inst.capacity}"
            )
    graph = network.graph
    for (u, v), count in charged_link_uses(embedding).items():
        link = graph.link(u, v)
        if count * rate > link.capacity + _EPS:
            raise InfeasibleEmbeddingError(
                f"link ({u}, {v}): demand {count * rate} exceeds capacity {link.capacity}"
            )


def verify_embedding(
    network: CloudNetwork,
    embedding: Embedding,
    flow: FlowConfig,
    constraints: "ConstraintSet | None" = None,
) -> None:
    """Full verification: core eq. 2–6 constraints, then registered extras.

    Core failures raise the historical :class:`IncompleteEmbeddingError` /
    :class:`InfeasibleEmbeddingError`; extras raise
    :class:`~repro.exceptions.ConstraintViolationError`.
    """
    # Imported lazily: the constraints package wraps check_completeness /
    # check_capacity back into its core constraints, so a module-level
    # import here would be circular.
    from ..constraints.core import referee

    referee(network, embedding, flow, constraints)
