"""Solution inspection: attribute an embedding's cost to its parts.

``compute_cost`` returns the totals the objective needs; this module
answers the operator questions — *which layer is expensive, and why?* —
by splitting eq. 1 per layer and per meta-path group. The attribution is
exact: per-layer figures sum back to the totals (asserted in tests), with
the multicast subtlety handled by charging each layer its own inter-layer
link union.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import FlowConfig
from ..network.cloud import CloudNetwork
from ..types import DUMMY_VNF, Position
from .costing import compute_cost
from .mapping import Embedding

__all__ = ["LayerCost", "CostAttribution", "attribute_cost"]


@dataclass(frozen=True, slots=True)
class LayerCost:
    """Cost contribution of one layer (the tail hop is layer omega+1)."""

    layer: int
    vnf_rental: float
    merger_rental: float
    inter_link_cost: float  # this layer's multicast union
    inner_link_cost: float

    @property
    def total(self) -> float:
        """Everything the layer adds to the objective."""
        return (
            self.vnf_rental
            + self.merger_rental
            + self.inter_link_cost
            + self.inner_link_cost
        )


@dataclass(frozen=True, slots=True)
class CostAttribution:
    """Exact per-layer decomposition of an embedding's cost."""

    layers: tuple[LayerCost, ...]
    total: float

    def dominant_layer(self) -> LayerCost:
        """The most expensive layer."""
        return max(self.layers, key=lambda lc: lc.total)

    def format_table(self) -> str:
        """Fixed-width rendering for terminals."""
        header = f"{'layer':>5s} {'vnf':>9s} {'merger':>9s} {'inter':>9s} {'inner':>9s} {'total':>10s}"
        lines = [header, "-" * len(header)]
        for lc in self.layers:
            lines.append(
                f"{lc.layer:>5d} {lc.vnf_rental:>9.2f} {lc.merger_rental:>9.2f} "
                f"{lc.inter_link_cost:>9.2f} {lc.inner_link_cost:>9.2f} {lc.total:>10.2f}"
            )
        lines.append("-" * len(header))
        lines.append(f"{'sum':>5s} {'':>9s} {'':>9s} {'':>9s} {'':>9s} {self.total:>10.2f}")
        return "\n".join(lines)


def attribute_cost(
    network: CloudNetwork, embedding: Embedding, flow: FlowConfig
) -> CostAttribution:
    """Split eq. 1 per layer; sums match :func:`compute_cost` exactly."""
    s = embedding.stretched()
    dag = embedding.dag
    graph = network.graph
    z = flow.size

    layers: list[LayerCost] = []
    for l in range(1, dag.omega + 2):
        vnf_rental = 0.0
        merger_rental = 0.0
        inner_link = 0.0
        if l <= dag.omega:
            layer = dag.layer(l)
            for gamma in range(1, layer.width + 1):
                pos = Position(l, gamma)
                vnf = s.vnf_at(pos)
                if vnf == DUMMY_VNF:
                    continue
                price = network.rental_price(embedding.placements[pos], vnf) * z
                if layer.has_merger and gamma == layer.phi + 1:
                    merger_rental += price
                else:
                    vnf_rental += price
            for mp in s.inner_layer_metapaths(l):
                inner_link += embedding.inner_path_from(mp.src).cost(graph) * z
        inter_union = set()
        for mp in s.inter_layer_metapaths(l):
            inter_union.update(embedding.inter_path_to(mp.dst).edge_set())
        inter_link = sum(graph.link(u, v).price for u, v in inter_union) * z
        layers.append(
            LayerCost(
                layer=l,
                vnf_rental=vnf_rental,
                merger_rental=merger_rental,
                inter_link_cost=inter_link,
                inner_link_cost=inner_link,
            )
        )

    total = compute_cost(network, embedding, flow).total
    return CostAttribution(layers=tuple(layers), total=total)
