"""The objective function (eq. 1) with the reuse accounting of eq. 7–10.

Cost has two parts, both proportional to the flow size ``z``:

* **VNF rental**: each placed position rents its instance once, so the reuse
  count ``alpha_{v,i}`` (eq. 7) is the number of positions assigned to
  ``f_v(i)``, mergers included, dummies excluded (``f(0)`` is free);
* **link cost**: inner-layer real-paths pay per traversal (eq. 10), while
  the inter-layer real-paths of one layer form a multicast — within a layer
  a shared link is paid once (the ``min{.., 1}`` of eq. 9); different layers
  pay separately (the outer sum over ``l``).

The same accounting drives bandwidth consumption, so
:func:`charged_link_uses` is shared with the capacity check and with the
solvers' incremental bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..config import FlowConfig
from ..network.cloud import CloudNetwork
from ..types import DUMMY_VNF, EdgeKey, NodeId, VnfTypeId
from .mapping import Embedding

__all__ = ["CostBreakdown", "compute_cost", "charged_link_uses", "vnf_uses"]


@dataclass(frozen=True)
class CostBreakdown:
    """Total embedding cost and its decomposition."""

    vnf_cost: float
    link_cost: float
    #: eq. 7 — (node, category) -> number of positions renting the instance.
    alpha_vnf: Mapping[tuple[NodeId, VnfTypeId], int]
    #: eq. 8 — link -> charged uses (inter-layer multicast already collapsed).
    alpha_link: Mapping[EdgeKey, int]

    @property
    def total(self) -> float:
        """The objective value of eq. 1."""
        return self.vnf_cost + self.link_cost

    def __repr__(self) -> str:
        return (
            f"CostBreakdown(total={self.total:.3f}, vnf={self.vnf_cost:.3f}, "
            f"link={self.link_cost:.3f})"
        )


def vnf_uses(embedding: Embedding) -> dict[tuple[NodeId, VnfTypeId], int]:
    """eq. 7: reuse count of every rented instance (dummies excluded)."""
    alpha: dict[tuple[NodeId, VnfTypeId], int] = {}
    s = embedding.stretched()
    for pos in embedding.placements:
        vnf = s.vnf_at(pos)
        if vnf == DUMMY_VNF:
            continue
        key = (embedding.placements[pos], vnf)
        alpha[key] = alpha.get(key, 0) + 1
    return alpha


def charged_link_uses(embedding: Embedding) -> dict[EdgeKey, int]:
    """eq. 8–10: charged uses of every link.

    inner-layer paths contribute one use per traversal; the inter-layer
    paths of one layer contribute at most one use per link (multicast).
    """
    alpha: dict[EdgeKey, int] = {}

    # eq. 10 — inner-layer paths pay every traversal.
    for path in embedding.inner_paths.values():
        for e in path.edges():
            alpha[e] = alpha.get(e, 0) + 1

    # eq. 9 — per layer, the union of inter-layer links counts once each.
    by_layer: dict[int, set[EdgeKey]] = {}
    for pos, path in embedding.inter_paths.items():
        by_layer.setdefault(pos.layer, set()).update(path.edge_set())
    for edges in by_layer.values():
        for e in edges:
            alpha[e] = alpha.get(e, 0) + 1
    return alpha


def compute_cost(
    network: CloudNetwork, embedding: Embedding, flow: FlowConfig
) -> CostBreakdown:
    """Evaluate eq. 1 for a candidate embedding.

    This is the single cost oracle every solver and baseline shares, so
    algorithm comparisons can never diverge on accounting.
    """
    alpha_vnf = vnf_uses(embedding)
    alpha_link = charged_link_uses(embedding)

    vnf_cost = sum(
        count * network.rental_price(node, vnf) * flow.size
        for (node, vnf), count in alpha_vnf.items()
    )
    graph = network.graph
    link_cost = sum(
        count * graph.link(u, v).price * flow.size
        for (u, v), count in alpha_link.items()
    )
    return CostBreakdown(
        vnf_cost=vnf_cost,
        link_cost=link_cost,
        alpha_vnf=alpha_vnf,
        alpha_link=alpha_link,
    )
