"""Embedding core: the executable form of the §3.3 formulation.

* :mod:`repro.embedding.mapping` — the :class:`Embedding` value type:
  VNF placements plus meta-path → real-path instantiation;
* :mod:`repro.embedding.costing` — the objective (eq. 1) with the reuse
  accounting of eq. 7–10, including the per-layer multicast link sharing;
* :mod:`repro.embedding.feasibility` — completeness (eq. 4–6) and capacity
  (eq. 2–3) verification;
* :mod:`repro.embedding.base` — the :class:`Embedder` solver interface and
  :class:`EmbeddingResult`.
"""

from .mapping import Embedding
from .costing import CostBreakdown, compute_cost
from .feasibility import check_capacity, check_completeness, verify_embedding
from .base import Embedder, EmbeddingResult

__all__ = [
    "Embedding",
    "CostBreakdown",
    "compute_cost",
    "check_capacity",
    "check_completeness",
    "verify_embedding",
    "Embedder",
    "EmbeddingResult",
]
