"""The :class:`Embedding` value type: a fully instantiated DAG-SFC.

An embedding binds

* every position of the stretched SFC (VNFs, mergers, the two dummies) to a
  network node — the paper's ``x_{v,l,gamma}`` variables, and
* every meta-path to a real-path — the ``x^a_{b,rho,l,eps}`` /
  ``y^{a,l,gamma}_{b,rho}`` variables.

Inter-layer real-paths are keyed by their *destination* position (the
upstream endpoint is always the previous layer's end position); inner-layer
real-paths by their *source* position (the downstream endpoint is always the
layer's merger).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..exceptions import IncompleteEmbeddingError
from ..network.paths import Path
from ..sfc.dag import DagSfc
from ..sfc.stretch import StretchedSfc
from ..types import NodeId, Position, VnfTypeId

__all__ = ["Embedding"]


@dataclass(frozen=True)
class Embedding:
    """A complete candidate solution of the DAG-SFC embedding problem."""

    dag: DagSfc
    source: NodeId
    dest: NodeId
    #: position -> hosting node, for every *real* position (dummies implied).
    placements: Mapping[Position, NodeId]
    #: inter-layer meta-path (keyed by downstream position) -> real-path.
    inter_paths: Mapping[Position, Path]
    #: inner-layer meta-path (keyed by parallel-VNF position) -> real-path.
    inner_paths: Mapping[Position, Path]

    def stretched(self) -> StretchedSfc:
        """The stretched view this embedding instantiates."""
        return StretchedSfc(self.dag)

    # -- placement accessors ------------------------------------------------------

    def node_of(self, pos: Position) -> NodeId:
        """Hosting node of any stretched position (dummies pinned to s/t)."""
        s = self.stretched()
        if pos == s.source_position:
            return self.source
        if pos == s.dest_position:
            return self.dest
        try:
            return self.placements[pos]
        except KeyError:
            raise IncompleteEmbeddingError(f"position {pos} is not placed") from None

    def vnf_of(self, pos: Position) -> VnfTypeId:
        """Category at a stretched position."""
        return self.stretched().vnf_at(pos)

    def placed_positions(self) -> list[Position]:
        """Real positions with a placement, in layer order."""
        return sorted(self.placements)

    def end_node(self, l: int) -> NodeId:
        """Node hosting the end position of layer ``l``."""
        return self.node_of(self.stretched().end_position(l))

    # -- path accessors -------------------------------------------------------------

    def inter_path_to(self, pos: Position) -> Path:
        """Real-path implementing the inter-layer meta-path into ``pos``."""
        try:
            return self.inter_paths[pos]
        except KeyError:
            raise IncompleteEmbeddingError(
                f"inter-layer meta-path into {pos} is not instantiated"
            ) from None

    def inner_path_from(self, pos: Position) -> Path:
        """Real-path implementing the inner-layer meta-path out of ``pos``."""
        try:
            return self.inner_paths[pos]
        except KeyError:
            raise IncompleteEmbeddingError(
                f"inner-layer meta-path out of {pos} is not instantiated"
            ) from None

    # -- derived metrics ---------------------------------------------------------------

    def total_hops(self) -> int:
        """Total link traversals over all real-paths (diagnostics)."""
        return sum(p.length for p in self.inter_paths.values()) + sum(
            p.length for p in self.inner_paths.values()
        )

    def nodes_used(self) -> frozenset[NodeId]:
        """Every node hosting some position (dummies included)."""
        used = {self.source, self.dest}
        used.update(self.placements.values())
        return frozenset(used)

    def describe(self) -> str:
        """Multi-line human-readable rendering (examples / debugging)."""
        s = self.stretched()
        lines = [f"Embedding of {self.dag!r}", f"  source={self.source} dest={self.dest}"]
        for l in range(1, self.dag.omega + 1):
            layer = self.dag.layer(l)
            parts = []
            for gamma in range(1, layer.width + 1):
                pos = Position(l, gamma)
                parts.append(f"{s.vnf_at(pos)}@{self.node_of(pos)}")
            lines.append(f"  L{l}: " + ", ".join(parts))
        for pos, path in sorted(self.inter_paths.items()):
            lines.append(f"  inter->{tuple(pos)}: {path!r}")
        for pos, path in sorted(self.inner_paths.items()):
            lines.append(f"  inner<-{tuple(pos)}: {path!r}")
        return "\n".join(lines)
