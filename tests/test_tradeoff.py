"""Tests for the cost/delay trade-off frontier."""

import pytest

from repro.analysis.delay import DelayModel, dag_delay
from repro.analysis.tradeoff import cost_delay_frontier
from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.embedding.costing import compute_cost
from repro.embedding.feasibility import verify_embedding
from repro.exceptions import ConfigurationError
from repro.network.generator import generate_network
from repro.sfc.generator import generate_dag_sfc
from repro.solvers import MbbeEmbedder


@pytest.fixture(scope="module")
def instance():
    # Expensive links relative to hops make the trade-off visible.
    net = generate_network(
        NetworkConfig(size=60, connectivity=5.0, n_vnf_types=8, price_ratio=0.4),
        rng=3,
    )
    dag = generate_dag_sfc(SfcConfig(size=5), n_vnf_types=8, rng=4)
    return net, dag


class TestFrontier:
    def test_points_are_nondominated_and_sorted(self, instance):
        net, dag = instance
        front = cost_delay_frontier(net, dag, 0, 59, MbbeEmbedder())
        assert front
        costs = [p.cost for p in front]
        delays = [p.delay for p in front]
        assert costs == sorted(costs)
        # As cost rises along the front, delay must strictly fall.
        for (c1, d1), (c2, d2) in zip(zip(costs, delays), zip(costs[1:], delays[1:])):
            assert c2 > c1 - 1e-9
            if c2 > c1 + 1e-9:
                assert d2 < d1 + 1e-9

    def test_lambda_zero_is_paper_problem(self, instance):
        net, dag = instance
        front = cost_delay_frontier(
            net, dag, 0, 59, MbbeEmbedder(), lambdas=(0.0,)
        )
        direct = MbbeEmbedder().embed(net, dag, 0, 59, FlowConfig())
        assert front[0].cost == pytest.approx(direct.total_cost)

    def test_all_embeddings_verify_on_original_network(self, instance):
        net, dag = instance
        for p in cost_delay_frontier(net, dag, 0, 59, MbbeEmbedder()):
            verify_embedding(net, p.embedding, FlowConfig())
            assert p.cost == pytest.approx(
                compute_cost(net, p.embedding, FlowConfig()).total
            )
            assert p.delay == pytest.approx(dag_delay(p.embedding, DelayModel()))

    def test_high_lambda_reduces_or_keeps_delay(self, instance):
        net, dag = instance
        pts = {}
        for lam in (0.0, 1.0):
            front = cost_delay_frontier(
                net, dag, 0, 59, MbbeEmbedder(), lambdas=(lam,)
            )
            pts[lam] = front[0]
        assert pts[1.0].delay <= pts[0.0].delay + 1e-9
        assert pts[1.0].cost >= pts[0.0].cost - 1e-9

    def test_validation(self, instance):
        net, dag = instance
        with pytest.raises(ConfigurationError):
            cost_delay_frontier(net, dag, 0, 59, MbbeEmbedder(), lambdas=(1.5,))
        with pytest.raises(ConfigurationError):
            cost_delay_frontier(
                net, dag, 0, 59, MbbeEmbedder(), delay_weight=0.0
            )

    def test_failed_lambdas_skipped(self, instance):
        net, dag = instance
        front = cost_delay_frontier(
            net, dag, 0, 9999, MbbeEmbedder(), lambdas=(0.0, 0.5)
        )
        assert front == []
