"""CountChain held to a plain-dict oracle.

The copy-on-write count structure (``repro.solvers.counts``) must be
observationally identical to the full-copy dicts it replaced: same totals,
same Mapping semantics, no mutation of ancestors. Random chain/compaction
sequences are driven by hypothesis; the compaction boundary and snapshot
caching get directed cases.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers.counts import COMPACT_EVERY, CountChain, flat_counts

# Small key space so updates collide with inherited keys often.
keys = st.integers(min_value=0, max_value=9)
update_maps = st.dictionaries(keys, st.integers(min_value=0, max_value=50), max_size=4)


def test_root_copies_initial() -> None:
    initial = {1: 2, 3: 4}
    chain = CountChain.root(initial)
    initial[1] = 99
    assert chain[1] == 2
    assert dict(chain) == {1: 2, 3: 4}


def test_ensure_passthrough_and_wrap() -> None:
    chain = CountChain.root({1: 1})
    assert CountChain.ensure(chain) is chain
    wrapped = CountChain.ensure({2: 5})
    assert isinstance(wrapped, CountChain)
    assert dict(wrapped) == {2: 5}


def test_chain_empty_updates_returns_self() -> None:
    chain = CountChain.root({1: 1})
    assert chain.chain({}) is chain


def test_chain_shadows_parent_without_mutation() -> None:
    parent = CountChain.root({1: 1, 2: 2})
    child = parent.chain({2: 7, 3: 3})
    assert dict(parent) == {1: 1, 2: 2}
    assert dict(child) == {1: 1, 2: 7, 3: 3}
    assert child[2] == 7 and parent[2] == 2
    assert child.get(9) is None
    assert child.get(9, 0) == 0
    assert 3 in child and 3 not in parent


def test_mapping_equality_with_plain_dict() -> None:
    child = CountChain.root({1: 1}).chain({2: 2})
    assert child == {1: 1, 2: 2}
    assert {1: 1, 2: 2} == child
    assert child != {1: 1}
    assert len(child) == 2
    assert sorted(child) == [1, 2]


def test_compaction_bounds_depth() -> None:
    chain = CountChain.root()
    oracle: dict[int, int] = {}
    for i in range(5 * COMPACT_EVERY):
        chain = chain.chain({i % 7: i})
        oracle[i % 7] = i
        assert chain.depth < COMPACT_EVERY
        assert dict(chain) == oracle
    # At least one compaction happened: a fresh root has depth 0.
    assert chain.depth < 5 * COMPACT_EVERY


def test_compaction_boundary_exact() -> None:
    # Build a chain sitting exactly one step below the threshold, then cross it.
    chain = CountChain.root({0: 0})
    for i in range(1, COMPACT_EVERY):
        chain = chain.chain({i: i})
    assert chain.depth == COMPACT_EVERY - 1
    compacted = chain.chain({99: 99})
    assert compacted.depth == 0  # became a new root
    assert dict(compacted) == {**{i: i for i in range(COMPACT_EVERY)}, 99: 99}
    # The pre-compaction chain is untouched.
    assert 99 not in chain


def test_snapshot_is_cached_and_complete() -> None:
    chain = CountChain.root({1: 1}).chain({2: 2}).chain({1: 5})
    snap = chain.snapshot()
    assert snap == {1: 5, 2: 2}
    assert chain.snapshot() is snap  # cached
    # Sibling chained after snapshotting still sees consistent state.
    sibling = chain.chain({3: 3})
    assert dict(sibling) == {1: 5, 2: 2, 3: 3}
    assert dict(chain) == {1: 5, 2: 2}


def test_flat_counts_passthrough_and_flatten() -> None:
    plain = {1: 1}
    assert flat_counts(plain) is plain
    chain = CountChain.root({1: 1}).chain({2: 2})
    flat = flat_counts(chain)
    assert flat == {1: 1, 2: 2}
    assert flat_counts(chain) is flat


@settings(max_examples=200, deadline=None)
@given(initial=update_maps, steps=st.lists(update_maps, max_size=3 * COMPACT_EVERY))
def test_random_chains_match_dict_oracle(
    initial: dict[int, int], steps: list[dict[int, int]]
) -> None:
    chain = CountChain.ensure(initial)
    oracle = dict(initial)
    history = [(chain, dict(oracle))]
    for updates in steps:
        chain = chain.chain(updates)
        oracle.update(updates)
        history.append((chain, dict(oracle)))
        # Full Mapping agreement at every step.
        assert dict(chain) == oracle
        assert len(chain) == len(oracle)
        for k in range(10):
            assert chain.get(k) == oracle.get(k)
            assert (k in chain) == (k in oracle)
    # Immutability: every ancestor still matches the oracle of its epoch,
    # even after descendants snapshotted/compacted past it.
    for link, snap in history:
        assert dict(link) == snap
        assert flat_counts(link) == snap


@settings(max_examples=100, deadline=None)
@given(initial=update_maps, steps=st.lists(update_maps, min_size=1, max_size=10))
def test_interleaved_snapshots_do_not_perturb(
    initial: dict[int, int], steps: list[dict[int, int]]
) -> None:
    # Snapshot after *every* chain step (the hot-filter pattern) and make
    # sure eager flattening never changes what a later child observes.
    eager = CountChain.ensure(initial)
    lazy = CountChain.ensure(initial)
    oracle = dict(initial)
    for updates in steps:
        eager = eager.chain(updates)
        _ = eager.snapshot()
        lazy = lazy.chain(updates)
        oracle.update(updates)
    assert dict(eager) == oracle
    assert dict(lazy) == oracle
