"""Tests for offline batch embedding and its ordering strategies."""

import numpy as np
import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.exceptions import ConfigurationError
from repro.network.generator import generate_network
from repro.sfc.generator import generate_dag_sfc
from repro.sim.batch import ORDERINGS, embed_batch
from repro.sim.online import SfcRequest
from repro.solvers import MbbeEmbedder


@pytest.fixture(scope="module")
def batch_setup():
    cfg = NetworkConfig(
        size=40, connectivity=4.5, n_vnf_types=8, deploy_ratio=0.4,
        vnf_capacity=3.0, link_capacity=4.0,
    )
    net = generate_network(cfg, rng=31)
    rng = np.random.default_rng(32)
    requests = []
    for i in range(12):
        size = int(rng.integers(2, 6))
        dag = generate_dag_sfc(SfcConfig(size=size), n_vnf_types=8, rng=rng)
        src, dst = (int(v) for v in rng.choice(40, size=2, replace=False))
        requests.append(SfcRequest(i, dag, src, dst, FlowConfig(rate=1.0)))
    return net, requests


class TestOrderings:
    def test_all_orderings_are_permutations(self, batch_setup):
        net, requests = batch_setup
        expected = {r.request_id for r in requests}
        for name, fn in ORDERINGS.items():
            order = fn(net, requests)
            assert sorted(order) == list(range(len(requests))), name

    def test_smallest_first_sorted(self, batch_setup):
        net, requests = batch_setup
        order = ORDERINGS["smallest_first"](net, requests)
        sizes = [requests[i].dag.num_positions for i in order]
        assert sizes == sorted(sizes)

    def test_largest_first_reverse(self, batch_setup):
        net, requests = batch_setup
        order = ORDERINGS["largest_first"](net, requests)
        sizes = [requests[i].dag.num_positions for i in order]
        assert sizes == sorted(sizes, reverse=True)


class TestEmbedBatch:
    def test_partition_and_cost(self, batch_setup):
        net, requests = batch_setup
        out = embed_batch(net, requests, MbbeEmbedder(), ordering="fifo")
        all_ids = {r.request_id for r in requests}
        assert set(out.accepted_ids) | set(out.rejected_ids) == all_ids
        assert not set(out.accepted_ids) & set(out.rejected_ids)
        assert out.total_cost > 0
        assert 0 < out.acceptance_ratio <= 1.0

    def test_deterministic(self, batch_setup):
        net, requests = batch_setup
        a = embed_batch(net, requests, MbbeEmbedder(), ordering="fifo")
        b = embed_batch(net, requests, MbbeEmbedder(), ordering="fifo")
        assert a.accepted_ids == b.accepted_ids
        assert a.total_cost == pytest.approx(b.total_cost)

    def test_network_left_untouched(self, batch_setup):
        """Batch embedding must not mutate the input network's capacities."""
        net, requests = batch_setup
        embed_batch(net, requests, MbbeEmbedder())
        out2 = embed_batch(net, requests, MbbeEmbedder())
        assert out2.acceptance_ratio > 0  # same fresh capacity both times

    def test_orderings_change_outcome_under_pressure(self, batch_setup):
        net, requests = batch_setup
        outcomes = {
            name: embed_batch(net, requests, MbbeEmbedder(), ordering=name)
            for name in ORDERINGS
        }
        # With tight capacity, at least two orderings should differ in
        # acceptance set or cost (otherwise the test setup is too slack).
        signatures = {
            (o.accepted_ids, round(o.total_cost, 6)) for o in outcomes.values()
        }
        assert len(signatures) >= 2

    def test_unknown_ordering(self, batch_setup):
        net, requests = batch_setup
        with pytest.raises(ConfigurationError):
            embed_batch(net, requests, MbbeEmbedder(), ordering="magic")

    def test_duplicate_ids_rejected(self, batch_setup):
        net, requests = batch_setup
        dupes = [requests[0], requests[0]]
        with pytest.raises(ConfigurationError):
            embed_batch(net, dupes, MbbeEmbedder())

    def test_empty_batch(self, batch_setup):
        net, _ = batch_setup
        out = embed_batch(net, [], MbbeEmbedder())
        assert out.acceptance_ratio == 1.0
        assert out.total_cost == 0.0
