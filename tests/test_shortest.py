"""Unit tests for Dijkstra and BFS-ring searches, cross-checked vs networkx."""

import networkx as nx
import pytest

from repro.exceptions import NodeNotFoundError
from repro.network.generator import generate_network
from repro.config import NetworkConfig
from repro.network.shortest import (
    bfs_rings,
    dijkstra,
    hop_distances,
    min_cost_path,
)

from .conftest import build_line_graph, build_square_graph


class TestDijkstra:
    def test_line_distances(self, line5):
        res = dijkstra(line5, 0)
        assert res.cost_to(4) == pytest.approx(4.0)
        assert res.path_to(4).nodes == (0, 1, 2, 3, 4)

    def test_prefers_cheap_two_hop_over_pricy_diagonal(self):
        g = build_square_graph(price=1.0)  # diagonal 0-2 costs 2.0, 0-1-2 costs 2.0
        res = dijkstra(g, 0)
        assert res.cost_to(2) == pytest.approx(2.0)

    def test_unreachable(self):
        g = build_line_graph(3)
        g.add_node(10)
        res = dijkstra(g, 0)
        assert not res.reachable(10)
        assert res.cost_to(10) == float("inf")
        assert res.path_to(10) is None

    def test_missing_source_raises(self, line5):
        with pytest.raises(NodeNotFoundError):
            dijkstra(line5, 99)

    def test_targets_early_exit_correct(self, line5):
        res = dijkstra(line5, 0, targets=(2,))
        assert res.cost_to(2) == pytest.approx(2.0)

    def test_link_filter_blocks_edge(self, line5):
        res = dijkstra(line5, 0, link_filter=lambda l: l.key != (1, 2))
        assert not res.reachable(3)

    def test_node_filter_blocks_node(self, line5):
        res = dijkstra(line5, 0, node_filter=lambda n: n != 2)
        assert not res.reachable(3)

    def test_node_filter_excluding_source_returns_empty(self, line5):
        res = dijkstra(line5, 0, node_filter=lambda n: n != 0)
        assert res.dist == {}

    def test_max_cost_bounds_search(self, line5):
        res = dijkstra(line5, 0, max_cost=2.0)
        assert res.reachable(2)
        assert not res.reachable(3)

    def test_matches_networkx_on_random_network(self):
        net = generate_network(NetworkConfig(size=60, connectivity=5.0, n_vnf_types=3), rng=11)
        g = net.graph
        nxg = nx.Graph()
        for link in g.links():
            nxg.add_edge(link.u, link.v, weight=link.price)
        res = dijkstra(g, 0)
        expected = nx.single_source_dijkstra_path_length(nxg, 0)
        assert set(res.dist) == set(expected)
        for node, d in expected.items():
            assert res.dist[node] == pytest.approx(d)


class TestMinCostPath:
    def test_same_node_is_trivial(self, line5):
        p = min_cost_path(line5, 2, 2)
        assert p.is_trivial and p.source == 2

    def test_simple(self, line5):
        assert min_cost_path(line5, 1, 3).nodes == (1, 2, 3)

    def test_none_when_unreachable(self):
        g = build_line_graph(2)
        g.add_node(5)
        assert min_cost_path(g, 0, 5) is None


class TestBfsRings:
    def test_rings_expand_by_hops(self, line5):
        r = bfs_rings(line5, 0, stop=lambda seen: len(seen) >= 4)
        assert r.rings[0] == frozenset({0})
        assert r.rings[1] == frozenset({1})
        assert r.rings[2] == frozenset({2})
        assert r.complete

    def test_stop_checked_on_root(self, line5):
        r = bfs_rings(line5, 2, stop=lambda seen: True)
        assert r.iterations == 1
        assert r.node_set == frozenset({2})

    def test_preds_are_previous_ring_neighbors(self, square):
        r = bfs_rings(square, 1, stop=lambda seen: len(seen) >= 4)
        # Node 3 is two hops from 1 via 0 or 2; both are ring-1 nodes.
        assert set(r.preds[3]) == {0, 2}

    def test_exhausts_component_without_stop(self):
        g = build_line_graph(3)
        g.add_node(9)
        r = bfs_rings(g, 0, stop=lambda seen: 9 in seen)
        assert not r.complete
        assert r.node_set == frozenset({0, 1, 2})

    def test_max_nodes_caps_expansion(self, line5):
        r = bfs_rings(line5, 0, stop=lambda seen: len(seen) >= 5, max_nodes=2)
        assert len(r.node_set) <= 2
        assert not r.complete

    def test_allowed_restricts_nodes(self, square):
        r = bfs_rings(
            square, 1, stop=lambda seen: len(seen) >= 3, allowed=lambda n: n != 0
        )
        assert 0 not in r.node_set

    def test_depth_of(self, line5):
        r = bfs_rings(line5, 0, stop=lambda seen: len(seen) >= 3)
        assert r.depth_of(0) == 0
        assert r.depth_of(2) == 2
        with pytest.raises(NodeNotFoundError):
            r.depth_of(4)

    def test_contains(self, line5):
        r = bfs_rings(line5, 0, stop=lambda seen: len(seen) >= 2)
        assert 1 in r
        assert 4 not in r


class TestHopDistances:
    def test_line(self, line5):
        d = hop_distances(line5, 0)
        assert d == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_matches_networkx(self):
        net = generate_network(NetworkConfig(size=40, connectivity=4.0, n_vnf_types=3), rng=5)
        g = net.graph
        nxg = nx.Graph((l.u, l.v) for l in g.links())
        expected = nx.single_source_shortest_path_length(nxg, 0)
        assert hop_distances(g, 0) == dict(expected)
