"""The runtime async sanitizer must fire on real hazards and stay quiet
otherwise.

These are the "does the smoke detector detect smoke" tests the e2e suites
rely on: test_service*/test_sharding run under the sanitizer (armed in
conftest), so this file proves a deliberately blocking callback and a
deliberately racing pair of tasks are actually caught.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.faults.model import FaultAction, FaultEvent, FaultState, FaultTarget
from repro.utils.sanitizer import LoopSanitizer, SanitizerError


def fail_node(node: int, *, at: int = 0) -> FaultEvent:
    return FaultEvent(time=at, action=FaultAction.FAIL, target=FaultTarget.node(node))


def recover_node(node: int, *, at: int = 0) -> FaultEvent:
    return FaultEvent(
        time=at, action=FaultAction.RECOVER, target=FaultTarget.node(node)
    )


# -- stall monitor ----------------------------------------------------------------


def test_stall_monitor_fires_on_blocking_coroutine() -> None:
    sanitizer = LoopSanitizer(stall_threshold_s=0.05, poll_s=0.01)

    async def blocks_the_loop() -> None:
        await asyncio.sleep(0.03)  # let the watchdog start its sleep
        time.sleep(0.2)  # deliberate on-loop block
        await asyncio.sleep(0.03)  # give the watchdog a wake-up to measure

    sanitizer.run(blocks_the_loop())
    assert sanitizer.stalls, "a 0.2s sync sleep on the loop must be detected"
    assert max(s.lag_s for s in sanitizer.stalls) >= 0.05
    with pytest.raises(SanitizerError, match="stall"):
        sanitizer.check()


def test_stall_monitor_quiet_on_well_behaved_coroutine() -> None:
    sanitizer = LoopSanitizer(stall_threshold_s=0.05, poll_s=0.01)

    async def polite() -> None:
        for _ in range(5):
            await asyncio.sleep(0.01)

    sanitizer.run(polite())
    assert sanitizer.stalls == []
    sanitizer.check()


def test_stall_monitor_quiet_when_blocking_work_is_offloaded() -> None:
    sanitizer = LoopSanitizer(stall_threshold_s=0.05, poll_s=0.01)

    async def offloads() -> None:
        await asyncio.to_thread(time.sleep, 0.2)

    sanitizer.run(offloads())
    assert sanitizer.stalls == []
    sanitizer.check()


# -- cross-task tripwire ----------------------------------------------------------


def test_tripwire_fires_on_ping_pong_ownership() -> None:
    sanitizer = LoopSanitizer()
    state = FaultState()

    async def racing() -> None:
        gate_a = asyncio.Event()
        gate_b = asyncio.Event()

        async def task_a() -> None:
            state.apply(fail_node(0))  # A owns
            gate_a.set()
            await gate_b.wait()
            state.apply(recover_node(0))  # A returns after B: the race

        async def task_b() -> None:
            await gate_a.wait()
            state.apply(fail_node(1))  # B takes over
            gate_b.set()

        await asyncio.gather(
            asyncio.create_task(task_a(), name="task-a"),
            asyncio.create_task(task_b(), name="task-b"),
        )

    sanitizer.run(racing())
    assert len(sanitizer.violations) == 1
    report = sanitizer.violations[0]
    assert report.where == "FaultState.apply"
    assert report.owners == ("task-a", "task-b", "task-a")
    with pytest.raises(SanitizerError, match="cross-task"):
        sanitizer.check()


def test_tripwire_allows_clean_ownership_handoff() -> None:
    sanitizer = LoopSanitizer()
    state = FaultState()

    async def handoff() -> None:
        async def restorer() -> None:
            state.apply(fail_node(0))
            state.apply(fail_node(1))

        async def dispatcher() -> None:
            state.apply(recover_node(0))
            state.apply(recover_node(1))

        # restore-then-serve: each owner retires before the next takes over.
        await asyncio.create_task(restorer())
        await asyncio.create_task(dispatcher())

    sanitizer.run(handoff())
    assert sanitizer.violations == []
    sanitizer.check()


def test_tripwire_exempts_worker_threads_and_sync_context() -> None:
    sanitizer = LoopSanitizer()
    state = FaultState()

    async def mixed() -> None:
        state.apply(fail_node(0))  # main task owns
        # awaited worker-thread mutations cannot interleave with the owner
        await asyncio.to_thread(state.apply, fail_node(1))
        await asyncio.to_thread(state.apply, recover_node(1))
        state.apply(recover_node(0))  # still the same (only) task owner

    sanitizer.run(mixed())
    # sync mutations outside any loop are exempt as well (offline setup code)
    state.apply(fail_node(2))
    assert sanitizer.violations == []
    sanitizer.check()


def test_tripwire_restores_patched_methods() -> None:
    sanitizer = LoopSanitizer()
    before = (FaultState.apply, type(FaultState).__name__)

    async def noop() -> None:
        await asyncio.sleep(0)

    sanitizer.run(noop())
    assert FaultState.apply is before[0]


# -- conftest integration ---------------------------------------------------------


def test_conftest_arms_sanitizer_only_for_service_suites(
    async_sanitizer: LoopSanitizer | None,
) -> None:
    # This file is not in SANITIZED_TEST_FILES, so the autouse fixture
    # must yield None and leave asyncio.run untouched.
    assert async_sanitizer is None
    assert asyncio.run.__module__ == "asyncio.runners"
