"""Unit tests for repro.utils (rng, timing, validation)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.rng import as_generator, sample_distinct, spawn_streams, trial_seed
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_finite,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestRng:
    def test_as_generator_from_int_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=5)
        b = as_generator(42).integers(0, 1000, size=5)
        assert (a == b).all()

    def test_as_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_spawn_streams_are_independent(self):
        streams = spawn_streams(7, 3)
        draws = [g.integers(0, 2**31) for g in streams]
        assert len(set(int(d) for d in draws)) == 3

    def test_spawn_streams_deterministic(self):
        a = [g.integers(0, 2**31) for g in spawn_streams(7, 3)]
        b = [g.integers(0, 2**31) for g in spawn_streams(7, 3)]
        assert a == b

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_streams(1, -1)

    def test_trial_seed_stable_and_distinct(self):
        s1 = trial_seed(123, 0)
        s2 = trial_seed(123, 1)
        assert s1 == trial_seed(123, 0)
        assert s1 != s2
        assert trial_seed(123, 0, salt=1) != s1

    def test_sample_distinct(self):
        rng = as_generator(3)
        out = sample_distinct(rng, list(range(10)), 4)
        assert len(set(out)) == 4
        with pytest.raises(ValueError):
            sample_distinct(rng, [1, 2], 3)


class TestTiming:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        with sw.lap("a"):
            pass
        assert sw.laps["a"] >= 0.0
        assert sw.total() == pytest.approx(sum(sw.laps.values()))
        sw.reset()
        assert sw.total() == 0.0

    def test_timed_returns_result_and_elapsed(self):
        result, elapsed = timed(lambda: 21 * 2)()
        assert result == 42
        assert elapsed >= 0.0


class TestValidation:
    def test_probability_bounds(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.0001)

    def test_positive(self):
        assert check_positive("x", 1e-9) == 1e-9
        with pytest.raises(ConfigurationError):
            check_positive("x", 0.0)

    def test_non_negative(self):
        assert check_non_negative("x", 0.0) == 0.0
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -0.1)

    def test_finite(self):
        with pytest.raises(ConfigurationError):
            check_finite("x", float("inf"))
        with pytest.raises(ConfigurationError):
            check_finite("x", float("nan"))
