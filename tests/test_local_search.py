"""Tests for min-cost routing and the local-search refiner."""

import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.embedding.costing import compute_cost
from repro.embedding.feasibility import verify_embedding
from repro.exceptions import NoSolutionError
from repro.network.cloud import CloudNetwork
from repro.network.generator import generate_network
from repro.sfc.builder import DagSfcBuilder
from repro.sfc.generator import generate_dag_sfc
from repro.solvers import (
    LocalSearchRefiner,
    MbbeEmbedder,
    RanvEmbedder,
    RefinedEmbedder,
    make_solver,
)
from repro.solvers.routing import route_min_cost
from repro.types import MERGER_VNF, Position

from .conftest import build_line_graph, build_square_graph


class TestRouteMinCost:
    def test_routes_fixed_placement(self):
        g = build_line_graph(5, price=1.0, capacity=100.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=10.0, capacity=100.0)
        net.deploy(3, 2, price=10.0, capacity=100.0)
        dag = DagSfcBuilder().single(1).single(2).build()
        placements = {Position(1, 1): 1, Position(2, 1): 3}
        emb = route_min_cost(net, dag, 0, 4, placements, FlowConfig())
        verify_embedding(net, emb, FlowConfig())
        assert emb.inter_paths[Position(2, 1)].nodes == (1, 2, 3)

    def test_multicast_free_reuse(self):
        """A layer's second branch rides the already-opened link for free."""
        g = build_line_graph(3, price=1.0, capacity=1.0)  # capacity ONE use
        net = CloudNetwork(g)
        net.deploy(1, 1, price=1.0, capacity=10.0)
        net.deploy(1, 2, price=1.0, capacity=10.0)
        net.deploy(1, MERGER_VNF, price=1.0, capacity=10.0)
        dag = DagSfcBuilder().parallel(1, 2).build()
        placements = {Position(1, 1): 1, Position(1, 2): 1, Position(1, 3): 1}
        # Both inter paths need link 0-1; multicast shares it within capacity 1.
        emb = route_min_cost(net, dag, 0, 2, placements, FlowConfig(rate=1.0))
        verify_embedding(net, emb, FlowConfig(rate=1.0))

    def test_inner_paths_detour_around_saturation(self):
        # Square 0-1-2-3-0 with generous capacities except the direct link
        # 1-2, which fits only ONE of the two inner-layer paths.
        from repro.network.graph import Graph

        g = Graph()
        g.add_link(0, 1, price=1.0, capacity=5.0)
        g.add_link(1, 2, price=1.0, capacity=1.0)
        g.add_link(2, 3, price=1.0, capacity=5.0)
        g.add_link(3, 0, price=1.0, capacity=5.0)
        g.add_link(1, 3, price=1.0, capacity=5.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=1.0, capacity=10.0)
        net.deploy(1, 2, price=1.0, capacity=10.0)
        net.deploy(2, MERGER_VNF, price=1.0, capacity=10.0)
        dag = DagSfcBuilder().parallel(1, 2).build()
        placements = {Position(1, 1): 1, Position(1, 2): 1, Position(1, 3): 2}
        emb = route_min_cost(net, dag, 0, 0, placements, FlowConfig(rate=1.0))
        verify_embedding(net, emb, FlowConfig(rate=1.0))
        # Two inner paths 1->2 required; the second detours via node 3.
        inner = sorted(
            emb.inner_paths[Position(1, g_)].nodes for g_ in (1, 2)
        )
        assert inner == [(1, 2), (1, 3, 2)]

    def test_unroutable_raises(self):
        g = build_line_graph(2, capacity=1.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=1.0, capacity=10.0)
        net.deploy(0, 2, price=1.0, capacity=10.0)
        dag = DagSfcBuilder().single(1).single(2).build()
        placements = {Position(1, 1): 1, Position(2, 1): 0}
        with pytest.raises(NoSolutionError):
            route_min_cost(net, dag, 0, 1, placements, FlowConfig(rate=1.0))


@pytest.fixture(scope="module")
def ls_instance():
    cfg = NetworkConfig(size=50, connectivity=4.5, n_vnf_types=6)
    net = generate_network(cfg, rng=21)
    dag = generate_dag_sfc(SfcConfig(size=5), n_vnf_types=6, rng=22)
    return net, dag


class TestLocalSearch:
    def test_never_worsens_and_verifies(self, ls_instance):
        net, dag = ls_instance
        base = RanvEmbedder().embed(net, dag, 0, 49, FlowConfig(), rng=5)
        refiner = LocalSearchRefiner()
        refined, cost, moves = refiner.refine(net, base.embedding, FlowConfig())
        assert cost <= base.total_cost + 1e-9
        verify_embedding(net, refined, FlowConfig())
        assert cost == pytest.approx(compute_cost(net, refined, FlowConfig()).total)

    def test_improves_random_placements_substantially(self, ls_instance):
        net, dag = ls_instance
        gains = []
        for seed in range(4):
            plain = RanvEmbedder().embed(net, dag, 0, 49, FlowConfig(), rng=seed)
            ls = make_solver("RANV+LS").embed(net, dag, 0, 49, FlowConfig(), rng=seed)
            assert plain.success and ls.success
            gains.append(plain.total_cost - ls.total_cost)
        assert max(gains) > 0  # at least one instance strictly improved

    def test_mbbe_already_near_local_optimum(self, ls_instance):
        """MBBE's output should leave little for single-move search."""
        net, dag = ls_instance
        plain = MbbeEmbedder().embed(net, dag, 0, 49, FlowConfig())
        ls = make_solver("MBBE+LS").embed(net, dag, 0, 49, FlowConfig())
        assert ls.total_cost <= plain.total_cost + 1e-9
        assert ls.total_cost >= 0.85 * plain.total_cost  # small relative gain

    def test_refined_embedder_stats(self, ls_instance):
        net, dag = ls_instance
        r = make_solver("RANV+LS").embed(net, dag, 0, 49, FlowConfig(), rng=2)
        assert r.success
        assert r.stats["ls_gain"] >= 0
        assert r.stats["base_cost"] >= r.total_cost
        assert "base" in r.stats

    def test_zero_rounds_is_identity(self, ls_instance):
        net, dag = ls_instance
        base = RanvEmbedder().embed(net, dag, 0, 49, FlowConfig(), rng=7)
        refined, cost, moves = LocalSearchRefiner(max_rounds=0).refine(
            net, base.embedding, FlowConfig()
        )
        assert moves == 0
        assert cost == pytest.approx(base.total_cost)

    def test_registered_names(self):
        from repro.solvers import available_solvers

        names = available_solvers()
        assert {"RANV+LS", "MINV+LS", "MBBE+LS"} <= set(names)
        assert make_solver("ranv+ls").name == "RANV+LS"
