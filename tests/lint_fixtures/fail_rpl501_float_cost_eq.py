"""RPL501: exact equality on float cost expressions."""


def same_cost(a, b):
    return a.total_cost == b.total_cost


def changed(result, baseline_price):
    return result.link_price != baseline_price
