"""Fixture: reading count mappings without copying them is fine."""


def reads(ss, flat_counts):
    used = ss.vnf_counts.get(("node", 1), 0)
    probe = flat_counts(ss.link_counts).get
    return used + probe(("a", "b"), 0) + len(ss.link_counts)
