"""RPL701: blocking primitives reachable from coroutines stall the loop."""

import asyncio
import time


def slow_helper() -> None:
    time.sleep(0.1)  # blocking, but only a problem when a coroutine reaches it


async def transitive() -> None:
    slow_helper()  # RPL701: reaches time.sleep through a sync helper
    await asyncio.sleep(0)


async def direct() -> None:
    time.sleep(0.1)  # RPL701: blocks the event loop directly
    await asyncio.sleep(0)
