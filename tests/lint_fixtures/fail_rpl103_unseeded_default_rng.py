"""RPL103: library code must accept an RngStream, not mint unseeded streams."""

import numpy as np
from numpy.random import default_rng


def sample_nodes(n):
    rng = np.random.default_rng()
    return rng.integers(0, n)


def sample_more(n):
    return default_rng().integers(0, n)
