"""Clean module: entry points (cli.py) may mint an unseeded root stream."""

import numpy as np


def main() -> int:
    rng = np.random.default_rng()
    return int(rng.integers(0, 2))
