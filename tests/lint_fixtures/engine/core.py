"""RPL212 pass fixture: the engine core is the sanctioned journal writer."""


def commit(engine, decision):
    if engine.wal is not None:
        engine.wal.append_record("commit", {"request_id": decision.request_id})
