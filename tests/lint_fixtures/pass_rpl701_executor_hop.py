"""RPL701 counterpart: blocking work shipped through an executor hop is fine."""

import asyncio
import time


def slow_helper() -> None:
    time.sleep(0.1)


def sync_caller() -> None:
    slow_helper()  # sync-to-sync blocking is not an event-loop concern


async def offloaded() -> None:
    await asyncio.to_thread(slow_helper)  # executor hop: args are exempt
    await asyncio.to_thread(time.sleep, 0.1)


async def via_executor(loop: asyncio.AbstractEventLoop) -> None:
    await loop.run_in_executor(None, slow_helper)
