"""Fixture: full copies of sub-solution count mappings (three RPL211 hits)."""


def expand(parent):
    vnf = dict(parent.vnf_counts)
    link = parent.link_counts.copy()
    merged = {**parent.vnf_counts, ("node", 1): 2}
    return vnf, link, merged
