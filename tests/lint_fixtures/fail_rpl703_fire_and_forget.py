"""RPL703: a dropped create_task handle can be garbage-collected mid-flight."""

import asyncio


async def work() -> None:
    await asyncio.sleep(0)


async def leaky() -> None:
    asyncio.create_task(work())  # RPL703: nobody awaits, stores, or watches it
    await asyncio.sleep(0)
