"""RPL213 pass fixture: migration goes through the engine's transaction.

Release-only and reserve-only call sites are fine too — only the pair in
one function is a hand-rolled migration.
"""


def move_embedding(engine, request_id, result):
    return engine.migrate(request_id, result)


def depart(engine_ledger, request_id):
    return engine_ledger.release(request_id)


def admit(engine_ledger, request_id, reservation):
    engine_ledger.reserve(request_id, reservation)
