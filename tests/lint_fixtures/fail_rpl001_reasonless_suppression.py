"""RPL001: a suppression without `-- reason` can never make a tree clean."""

import random  # reprolint: disable=RPL101
