"""RPL704 counterpart: context-managed or try/finally-guarded locks."""

import asyncio
import threading


class Worker:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._async_lock = asyncio.Lock()

    async def guarded_acquire(self) -> None:
        await self._async_lock.acquire()
        try:
            await asyncio.sleep(0)
        finally:
            self._async_lock.release()

    async def context_managed(self) -> None:
        # an *asyncio* lock held across an await is the intended usage.
        async with self._async_lock:
            await asyncio.sleep(0)

    def sync_critical_section(self) -> None:
        with self._lock:
            pass  # no await inside: the sync lock never outlives a callback
