"""Clean module: explicit RngStream parameters, Generator API only."""

import numpy as np


def sample(rng: np.random.Generator, n: int) -> int:
    return int(rng.integers(0, n))


def derive(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)
