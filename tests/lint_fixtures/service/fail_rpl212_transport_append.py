"""RPL212 fixture: transport code appending WAL records directly (two hits)."""


def handle_submit(server, decision):
    server.wal.append_record("commit", {"request_id": decision.request_id})


def handle_release(writer, request_id):
    writer.append_record("release", {"request_id": request_id})
