"""RPL213 fixture: hand-rolled ledger migrations outside the engine (two hits)."""


def move_embedding(server, request_id, replacement):
    old = server.engine.ledger.release(request_id)
    try:
        server.engine.ledger.reserve(request_id, replacement)
    except Exception:
        return old


async def defrag_one(shard, request_id, reservation):
    shard.ledger.release(request_id)
    shard.ledger.reserve(request_id, reservation)
