"""RPL601 fixture: transport code importing domain machinery directly."""

from repro.solvers.registry import make_solver
from ..network.reservations import ReservationLedger
from repro.faults import repair


def build() -> tuple[object, object, object]:
    return make_solver, ReservationLedger, repair
