"""RPL601-clean fixture: transport code reaching domain logic via the engine."""

from repro.engine import EmbeddingEngine, ReservationLedger, solve_on_view
from repro.network.cloud import CloudNetwork


def build(network: CloudNetwork) -> tuple[object, object, object]:
    return EmbeddingEngine, ReservationLedger, solve_on_view
