"""RPL101: both stdlib-random import forms are banned."""

import random

from random import choice


def pick(items):
    return choice(items) if items else random.random()
