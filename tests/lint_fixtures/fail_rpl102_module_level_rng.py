"""RPL102: module-import-time RNG work creates hidden global state."""

import numpy as np

_SHARED = np.random.default_rng(42)


class Jitter:
    noise = np.random.default_rng(7)
