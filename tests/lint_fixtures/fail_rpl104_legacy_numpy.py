"""RPL104: the legacy numpy global-singleton RNG API is banned everywhere."""

import numpy as np
from numpy.random import shuffle


def scramble(items, n):
    np.random.seed(0)
    picked = np.random.choice(n, size=2)
    shuffle(items)
    return picked
