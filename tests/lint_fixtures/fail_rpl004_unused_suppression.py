"""RPL004: suppressions that silence nothing must be removed."""

TOTAL_NODES = 500  # reprolint: disable=RPL501 -- stale: the comparison moved away
