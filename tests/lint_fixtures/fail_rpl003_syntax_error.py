"""RPL003: unparsable files are reported, not skipped."""

def broken(:
    pass
