"""Clean module: cost comparison through the tolerance helper."""

from repro.utils.tolerance import close


def same_cost(a: float, b: float) -> bool:
    return close(a, b)


def is_unsolved(total_cost: float) -> bool:
    return total_cost == float("inf")  # equality against inf is exact-safe
