"""RPL214 fixture: reaching for the raw referee primitives directly.

Both the import of the primitives and an attribute-style use are flagged;
such code skips every registered extra constraint (delay budgets,
anti-affinity, zone caps) and must call ``verify_embedding`` instead.
"""

from repro.embedding import feasibility
from repro.embedding.feasibility import check_capacity, check_completeness


def accept(network, embedding, flow):
    check_completeness(network, embedding)
    feasibility.check_capacity(network, embedding, flow)
    return True
