"""RPL705 counterpart: the mark/rollback window stays synchronous."""

import asyncio
from typing import Any


class Ledger:
    def __init__(self, state: Any) -> None:
        self.state = state

    async def reserve_then_io(self, request_id: int, amount: float) -> None:
        mark = self.state.mark()
        try:
            self.state.reserve_vnf(request_id, amount)
        except ValueError:
            self.state.rollback(mark)
        await self.audit(request_id)  # only after the window is closed

    async def audit(self, request_id: int) -> None:
        await asyncio.sleep(0)
