"""RPL201: residual bookkeeping is private to network/state.py."""


def leak_reservation(state, u, v, rate):
    state._link_used[(u, v)] = rate


def overwrite_capacity(link, state, node, vnf_type):
    link.capacity = 0.0
    return state._vnf_used.get((node, vnf_type), 0.0)
