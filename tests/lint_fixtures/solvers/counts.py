"""Fixture: the sanctioned counts module may materialize full copies."""


def compact(chain):
    flat = dict(chain.vnf_counts)
    flat.update({**chain.link_counts})
    return flat
