"""RPL202: reserving without release or mark/rollback leaks on failure."""


def commit_candidate(state, path, rate):
    for u, v in path.edges():
        state.reserve_link(u, v, rate)
    return state
