"""Clean solver code: every reserve is guarded or balanced."""


def try_candidate(state, path, rate):
    snapshot = state.mark()
    try:
        for u, v in path.edges():
            state.reserve_link(u, v, rate)
    except Exception:
        state.rollback(snapshot)
        raise
    return snapshot


def move_reservation(state, old, new, rate):
    state.release_link(old[0], old[1], rate)
    state.reserve_link(new[0], new[1], rate)
