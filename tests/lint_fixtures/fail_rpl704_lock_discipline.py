"""RPL704: leaked acquires and sync locks held across awaits."""

import asyncio
import threading


class Worker:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._async_lock = asyncio.Lock()

    async def leaky_acquire(self) -> None:
        await self._async_lock.acquire()  # RPL704: no try/finally release
        self._async_lock.release()  # an exception above would leak the lock

    async def held_across_await(self) -> None:
        with self._lock:
            await asyncio.sleep(0)  # RPL704: sync lock held across a suspension
