"""Clean module: a documented suppression silences its finding."""

import random  # reprolint: disable=RPL101 -- fixture: demonstrates a justified exception

SALT = random.Random  # referenced so the import is meaningful
