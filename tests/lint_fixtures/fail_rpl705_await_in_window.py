"""RPL705: an await between mark() and rollback() invalidates the mark token."""

import asyncio
from typing import Any


class Ledger:
    def __init__(self, state: Any) -> None:
        self.state = state

    async def reserve_with_io(self, request_id: int, amount: float) -> None:
        mark = self.state.mark()
        try:
            await self.audit(request_id)  # RPL705: interleaving can mutate state
            self.state.reserve_vnf(request_id, amount)
        except ValueError:
            self.state.rollback(mark)

    async def audit(self, request_id: int) -> None:
        await asyncio.sleep(0)
