"""RPL002: suppressions must name real rule codes."""

X = 1  # reprolint: disable=RPL999 -- there is no rule RPL999
