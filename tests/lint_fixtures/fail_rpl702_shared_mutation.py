"""RPL702: shared-state mutation in an awaiting coroutine, outside the dispatcher."""

import asyncio
from typing import Any


class Handler:
    def __init__(self, engine: Any) -> None:
        self.engine = engine

    async def handle(self, request_id: int) -> None:
        self.engine.submit(request_id)  # RPL702: mutates shared engine state
        await asyncio.sleep(0)  # ...while another task can interleave here
        self.engine.last_served = request_id  # RPL702: write through shared state
