"""RPL703 counterpart: stored / gathered / callback-watched tasks are fine."""

import asyncio


async def work() -> None:
    await asyncio.sleep(0)


async def supervised() -> None:
    task = asyncio.create_task(work())  # stored, then awaited
    background = [asyncio.create_task(work())]  # stored in a container
    background.append(asyncio.create_task(work()))
    watched = asyncio.create_task(work())
    watched.add_done_callback(lambda t: t.exception())
    await asyncio.gather(task, watched, *background)
