"""Fixture registry: only GoodEmbedder (and a lambda-wrapped variant) registered."""

_REGISTRY = {
    "GOOD": GoodEmbedder,  # noqa: F821 - fixture, never imported
    "GOOD+X": lambda **kw: WrappedEmbedder(GoodEmbedder(), **kw),  # noqa: F821
}
