"""Abstract and private embedders are exempt from RPL301."""

import abc


class Embedder:
    """Stand-in base."""


class TwoPhaseSkeleton(Embedder):
    """Abstract by NotImplementedError convention: not flagged."""

    def _pick_node(self, feasible, rng):
        raise NotImplementedError


class DecoratedSkeleton(Embedder):
    """Abstract by decorator: not flagged."""

    @abc.abstractmethod
    def _solve(self, network, dag):
        ...


class _InternalEmbedder(Embedder):
    """Private by name: not flagged."""

    def _solve(self, network, dag):
        return None
