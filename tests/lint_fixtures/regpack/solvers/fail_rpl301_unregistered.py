"""RPL301: a concrete Embedder subclass missing from the registry."""


class Embedder:
    """Stand-in for repro.embedding.base.Embedder."""


class GoodEmbedder(Embedder):
    def _solve(self, network, dag):
        return None


class WrappedEmbedder(Embedder):
    def _solve(self, network, dag):
        return None


class ForgottenEmbedder(Embedder):
    """Concrete, under solvers/, but nobody can reach it: flagged."""

    def _solve(self, network, dag):
        return None


class ForgottenChild(ForgottenEmbedder):
    """Transitive subclasses are flagged too."""

    def _solve(self, network, dag):
        return None
