"""RPL401: mutable default arguments alias state across calls."""


def accumulate(x, acc=[]):
    acc.append(x)
    return acc


def index(key, table={}, *, tags=set()):
    return table.get(key, tags)
