"""RPL702 counterpart: handlers enqueue; only the (sync-called) owner mutates."""

import asyncio
from typing import Any


class Handler:
    def __init__(self, engine: Any, queue: "asyncio.Queue[int]") -> None:
        self.engine = engine
        self.queue = queue

    async def handle(self, request_id: int) -> None:
        # the coroutine never touches the engine: it hands the work to the
        # single-writer dispatcher through the queue.
        await self.queue.put(request_id)

    def apply(self, request_id: int) -> None:
        # called by the dispatcher between awaits; sync code is exempt.
        self.engine.submit(request_id)
