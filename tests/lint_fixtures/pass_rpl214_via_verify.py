"""RPL214 clean fixture: acceptance goes through the blessed referee."""

from repro.embedding import verify_embedding


def accept(network, embedding, flow, constraints=None):
    verify_embedding(network, embedding, flow, constraints)
    return True
