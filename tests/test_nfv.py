"""Tests for the NFV substrate: catalog, actions, parallelism, instances, pricing."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nfv.actions import Action, ActionProfile, PacketField
from repro.nfv.instances import DeploymentMap, VnfInstance
from repro.nfv.parallelism import (
    ParallelismAnalyzer,
    ParallelismClass,
    can_parallelize,
    classify,
)
from repro.nfv.pricing import UniformFluctuationPricer, price_bounds
from repro.nfv.vnf import VnfCatalog, VnfDescriptor, standard_catalog
from repro.types import DUMMY_VNF, MERGER_VNF


class TestActionProfile:
    def test_write_read_conflict(self):
        nat = ActionProfile.of(writes=(PacketField.SRC_IP,))
        monitor = ActionProfile.of(reads=(PacketField.SRC_IP,))
        assert nat.conflicts_with(monitor)
        assert monitor.conflicts_with(nat)  # symmetric

    def test_write_write_conflict(self):
        a = ActionProfile.of(writes=(PacketField.TOS,))
        b = ActionProfile.of(writes=(PacketField.TOS,))
        assert a.conflicts_with(b)

    def test_disjoint_no_conflict(self):
        a = ActionProfile.of(reads=(PacketField.SRC_IP,))
        b = ActionProfile.of(reads=(PacketField.PAYLOAD,))
        assert not a.conflicts_with(b)

    def test_read_read_same_field_ok(self):
        a = ActionProfile.of(reads=(PacketField.SRC_IP,))
        b = ActionProfile.of(reads=(PacketField.SRC_IP,))
        assert not a.conflicts_with(b)

    def test_may_drop(self):
        fw = ActionProfile.of(actions=(Action.DROP,))
        assert fw.may_drop
        assert not fw.is_read_only

    def test_read_only(self):
        mon = ActionProfile.of(reads=(PacketField.SRC_IP,))
        assert mon.is_read_only


class TestClassify:
    def test_conflicting_pair_sequential(self):
        nat = ActionProfile.of(writes=(PacketField.SRC_IP,))
        fw = ActionProfile.of(reads=(PacketField.SRC_IP,), actions=(Action.DROP,))
        assert classify(nat, fw) is ParallelismClass.SEQUENTIAL

    def test_dropper_parallel_with_merge_logic(self):
        fw = ActionProfile.of(reads=(PacketField.DST_IP,), actions=(Action.DROP,))
        mon = ActionProfile.of(reads=(PacketField.SRC_IP,))
        assert classify(fw, mon) is ParallelismClass.PARALLEL_WITH_MERGE_LOGIC

    def test_readers_parallel_free(self):
        a = ActionProfile.of(reads=(PacketField.SRC_IP,))
        b = ActionProfile.of(reads=(PacketField.PAYLOAD,))
        assert classify(a, b) is ParallelismClass.PARALLEL_FREE


class TestCatalog:
    def test_from_size(self):
        cat = VnfCatalog(n=5)
        assert len(cat) == 5
        assert cat.regular_ids == (1, 2, 3, 4, 5)

    def test_sentinels_are_members(self):
        cat = VnfCatalog(n=2)
        assert DUMMY_VNF in cat
        assert MERGER_VNF in cat
        assert 99 not in cat

    def test_rejects_reserved_id(self):
        with pytest.raises(ConfigurationError):
            VnfCatalog({0: VnfDescriptor(type_id=0, name="bad")})

    def test_rejects_mismatched_key(self):
        with pytest.raises(ConfigurationError):
            VnfCatalog({2: VnfDescriptor(type_id=3, name="bad")})

    def test_needs_n_or_descriptors(self):
        with pytest.raises(ConfigurationError):
            VnfCatalog()

    def test_standard_catalog_profiles(self):
        cat = standard_catalog()
        assert len(cat) == 12
        assert all(cat.profile(i) is not None for i in cat)
        assert cat.name(1) == "firewall"
        assert cat.name(MERGER_VNF) == "merger"

    def test_standard_catalog_truncation(self):
        assert len(standard_catalog(4)) == 4
        with pytest.raises(ConfigurationError):
            standard_catalog(99)


class TestAnalyzer:
    def test_nat_and_lb_sequential(self):
        # NAT writes src ip/port; LB reads them -> conflict.
        cat = standard_catalog()
        an = ParallelismAnalyzer(cat)
        nat = next(i for i in cat if cat.name(i) == "nat")
        lb = next(i for i in cat if cat.name(i) == "load_balancer")
        assert not an.parallelizable(nat, lb)

    def test_firewall_and_dpi_parallel_with_merge(self):
        cat = standard_catalog()
        fw = next(i for i in cat if cat.name(i) == "firewall")
        dpi = next(i for i in cat if cat.name(i) == "dpi")
        assert ParallelismAnalyzer(cat, allow_merge_logic=True).parallelizable(fw, dpi)
        assert not ParallelismAnalyzer(cat, allow_merge_logic=False).parallelizable(fw, dpi)

    def test_unknown_profile_policy(self):
        cat = VnfCatalog(n=3)  # no profiles
        assert not ParallelismAnalyzer(cat).parallelizable(1, 2)
        assert ParallelismAnalyzer(cat, unknown_is_sequential=False).parallelizable(1, 2)

    def test_group_check(self):
        cat = standard_catalog()
        an = ParallelismAnalyzer(cat)
        fw = next(i for i in cat if cat.name(i) == "firewall")
        ids_mon = next(i for i in cat if cat.name(i) == "monitor")
        nat = next(i for i in cat if cat.name(i) == "nat")
        assert an.all_parallelizable((fw,), ids_mon)
        assert not an.all_parallelizable((fw, ids_mon), nat)

    def test_parallel_fraction_in_range(self):
        an = ParallelismAnalyzer(standard_catalog())
        frac = an.parallel_fraction()
        assert 0.0 < frac < 1.0

    def test_can_parallelize_shorthand(self):
        cat = standard_catalog()
        fw = 1  # firewall: read-only + DROP -> needs merge logic vs itself
        assert can_parallelize(cat, fw, fw) is True
        assert can_parallelize(cat, fw, fw, allow_merge_logic=False) is False


class TestInstances:
    def test_instance_validation(self):
        with pytest.raises(ConfigurationError):
            VnfInstance(node=0, vnf_type=1, price=-1.0, capacity=1.0)
        with pytest.raises(ConfigurationError):
            VnfInstance(node=0, vnf_type=1, price=1.0, capacity=0.0)

    def test_deployment_map_roundtrip(self):
        dm = DeploymentMap()
        dm.add(VnfInstance(node=0, vnf_type=1, price=5.0, capacity=2.0))
        dm.add(VnfInstance(node=0, vnf_type=2, price=6.0, capacity=2.0))
        dm.add(VnfInstance(node=1, vnf_type=1, price=7.0, capacity=2.0))
        assert dm.types_at(0) == {1, 2}
        assert dm.nodes_with(1) == {0, 1}
        assert dm.instance(1, 1).price == 7.0
        assert dm.instance(1, 2) is None
        assert dm.count() == 3
        assert dm.deployed_types == {1, 2}
        assert [i.node for i in dm.instances_of(1)] == [0, 1]

    def test_duplicate_rejected(self):
        dm = DeploymentMap()
        dm.add(VnfInstance(node=0, vnf_type=1, price=5.0, capacity=2.0))
        with pytest.raises(ConfigurationError):
            dm.add(VnfInstance(node=0, vnf_type=1, price=9.0, capacity=2.0))

    def test_from_mapping(self):
        dm = DeploymentMap.from_mapping({0: {1: (5.0, 2.0)}, 1: {2: (6.0, 3.0)}})
        assert dm.instance(0, 1).capacity == 2.0
        assert dm.deployment_ratio(1, 2) == 0.5


class TestPricing:
    def test_bounds(self):
        assert price_bounds(100.0, 0.05) == (95.0, 105.0)
        assert price_bounds(100.0, 0.0) == (100.0, 100.0)

    def test_bounds_validation(self):
        with pytest.raises(ConfigurationError):
            price_bounds(-1.0, 0.1)
        with pytest.raises(ConfigurationError):
            price_bounds(1.0, 1.5)

    def test_draws_within_support(self):
        p = UniformFluctuationPricer(mean=50.0, fluctuation_ratio=0.2, rng=1)
        xs = p.draw_many(1000)
        assert xs.min() >= 40.0 and xs.max() <= 60.0
        assert np.mean(xs) == pytest.approx(50.0, rel=0.02)

    def test_single_draw(self):
        p = UniformFluctuationPricer(mean=50.0, fluctuation_ratio=0.0, rng=1)
        assert p.draw() == pytest.approx(50.0)

    def test_observed_fluctuation(self):
        p = UniformFluctuationPricer(mean=100.0, fluctuation_ratio=0.5, rng=2)
        xs = p.draw_many(5000)
        assert p.observed_fluctuation(xs) == pytest.approx(0.5, abs=0.02)
