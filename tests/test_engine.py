"""The transport-agnostic embedding engine: lifecycle, faults, durability.

Unit tests drive :class:`~repro.engine.core.EmbeddingEngine` directly — no
sockets, no event loop — and the golden test closes the refactor's central
loop: one trace pushed through the offline
:class:`~repro.sim.online.OnlineSimulator` and through a strict single-shard
:class:`~repro.service.EmbeddingServer` must produce identical decisions,
identical costs, and an identical ledger document, because both are thin
drivers over the same engine.
"""

import asyncio

import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.engine import (
    DEFAULT_NETWORK_ID,
    ENGINE_COUNTER_KEYS,
    EmbeddingEngine,
    EmbeddingRequest,
    ShardRouter,
    advertised_vnf_types,
    state_store,
)
from repro.exceptions import ConfigurationError, LedgerError
from repro.faults.model import FaultAction, FaultEvent, FaultTarget
from repro.network.cloud import CloudNetwork
from repro.network.generator import generate_network
from repro.service import EmbeddingServer, ServiceClient, ServiceConfig
from repro.sfc.builder import DagSfcBuilder
from repro.sfc.generator import generate_dag_sfc
from repro.sim.online import OnlineSimulator
from repro.solvers.registry import make_solver
from repro.utils.rng import as_generator, trial_seed

from .conftest import build_line_graph


def engine_network(seed: int = 17) -> CloudNetwork:
    cfg = NetworkConfig(
        size=40, connectivity=4.0, n_vnf_types=6, deploy_ratio=0.5,
        vnf_capacity=4.0, link_capacity=4.0,
    )
    return generate_network(cfg, rng=seed)


def tight_network() -> CloudNetwork:
    """0-1-2 line where one unit-rate request saturates everything."""
    net = CloudNetwork(build_line_graph(3, price=1.0, capacity=1.0))
    net.deploy(1, 1, price=5.0, capacity=1.0)
    return net


def line_request(rid: int, *, rate: float = 1.0, seed: int | None = None) -> EmbeddingRequest:
    dag = DagSfcBuilder().single(1).build()
    return EmbeddingRequest(
        request_id=rid, dag=dag, source=0, dest=2, flow=FlowConfig(rate=rate), seed=seed
    )


def make_requests(network: CloudNetwork, n: int, *, seed: int = 11) -> list[EmbeddingRequest]:
    gen = as_generator(seed)
    out = []
    for rid in range(n):
        dag = generate_dag_sfc(SfcConfig(size=3), 6, rng=gen)
        src, dst = (int(v) for v in gen.choice(network.num_nodes, size=2, replace=False))
        out.append(
            EmbeddingRequest(
                request_id=rid, dag=dag, source=src, dest=dst,
                flow=FlowConfig(rate=1.0), seed=int(gen.integers(2**31)),
                arrival_index=rid,
            )
        )
    return out


class TestEngineLifecycle:
    def test_submit_commit_release_roundtrip(self):
        engine = EmbeddingEngine(tight_network(), "MBBE")
        result = engine.submit(line_request(1), rng=0)
        assert result.success
        assert engine.is_active(1)
        assert engine.active_count() == 1
        assert engine.counters["accepted"] == 1
        assert engine.counters["dispatched"] == 1
        assert engine.counters["total_cost_accepted"] == result.total_cost
        engine.release(1)
        assert not engine.is_active(1)
        assert engine.counters["departed"] == 1
        # Released capacity is reusable: the same request embeds again.
        assert engine.submit(line_request(2), rng=0).success

    def test_duplicate_submit_raises(self):
        engine = EmbeddingEngine(tight_network(), "MBBE")
        assert engine.submit(line_request(1), rng=0).success
        with pytest.raises(LedgerError, match="already active"):
            engine.submit(line_request(1), rng=0)

    def test_release_unknown_raises(self):
        engine = EmbeddingEngine(tight_network(), "MBBE")
        with pytest.raises(ConfigurationError):
            engine.release(99)

    def test_no_solution_decision(self):
        engine = EmbeddingEngine(tight_network(), "MBBE")
        assert engine.submit(line_request(1), rng=0).success
        # The line is saturated: the next request has no feasible embedding.
        decision = engine.commit(line_request(2), engine.solve(line_request(2), rng=0))
        assert not decision.accepted
        assert decision.code == "no_solution"
        assert decision.decision_index == 1
        assert engine.counters["rejected_no_solution"] == 1

    def test_decision_indices_are_engine_global(self):
        engine = EmbeddingEngine(engine_network(), "MBBE")
        requests = make_requests(engine.network, 6)
        decisions = engine.submit_batch(requests)
        assert [d.decision_index for d in decisions] == list(range(6))
        accepted = [d for d in decisions if d.accepted]
        assert [d.commit_index for d in accepted] == list(range(len(accepted)))

    def test_strict_batch_equals_sequential_submits(self):
        network = engine_network()
        requests = make_requests(network, 12)
        batch_engine = EmbeddingEngine(network, make_solver("MBBE"))
        one_by_one = EmbeddingEngine(network, make_solver("MBBE"))
        decisions = batch_engine.submit_batch(requests, rng=7)
        for request in requests:
            one_by_one.submit(request, rng=7)
        assert len(decisions) == len(requests)
        assert batch_engine.counters == one_by_one.counters
        assert state_store.snapshot_to_dict(
            batch_engine.ledger, counters={}
        ) == state_store.snapshot_to_dict(one_by_one.ledger, counters={})

    def test_speculative_batch_reports_capacity_conflict(self):
        engine = EmbeddingEngine(tight_network(), "MBBE")
        requests = [line_request(1, seed=0), line_request(2, seed=0)]
        decisions = engine.submit_batch(requests, rng=0, speculative=True)
        assert [d.accepted for d in decisions] == [True, False]
        assert decisions[1].code == "capacity_conflict"
        assert engine.counters["rejected_conflict"] == 1

    def test_solve_seed_prefers_request_seed(self):
        engine = EmbeddingEngine(tight_network(), "MBBE", seed=123)
        assert engine.solve_seed(line_request(1, seed=77)) == 77
        request = EmbeddingRequest(
            request_id=2, dag=DagSfcBuilder().single(1).build(),
            source=0, dest=2, arrival_index=9,
        )
        assert engine.solve_seed(request) == trial_seed(123, 9, salt=0x5EC5)


class TestEngineFaults:
    def test_fault_degrades_and_recovery_restores(self):
        engine = EmbeddingEngine(tight_network(), "MBBE")
        assert engine.submit(line_request(1), rng=0).success
        outcomes = engine.apply_fault(
            FaultEvent(time=0, action=FaultAction.FAIL, target=FaultTarget.link(0, 1)),
            auto_seed=True,
        )
        assert engine.degraded
        assert engine.counters["faults_injected"] == 1
        # The only path is dead and nothing else fits: the request is repaired
        # or evicted, but the ladder definitely ran over it.
        assert len(outcomes) == 1
        assert outcomes[0].request_id == 1
        engine.apply_fault(
            FaultEvent(time=1, action=FaultAction.RECOVER, target=FaultTarget.link(0, 1))
        )
        assert not engine.degraded
        assert engine.counters["recoveries"] == 1

    def test_duplicate_fail_is_a_noop(self):
        engine = EmbeddingEngine(tight_network(), "MBBE")
        event = FaultEvent(time=0, action=FaultAction.FAIL, target=FaultTarget.node(0))
        engine.apply_fault(event, auto_seed=True)
        engine.apply_fault(event, auto_seed=True)
        assert engine.counters["faults_injected"] == 1

    def test_stats_reports_fault_gauges(self):
        engine = EmbeddingEngine(tight_network(), "MBBE")
        engine.apply_fault(
            FaultEvent(time=0, action=FaultAction.FAIL, target=FaultTarget.node(0)),
            auto_seed=True,
        )
        stats = engine.stats()
        assert stats["faults"]["degraded"] is True
        assert stats["faults"]["dead_nodes"] == 1
        assert set(stats["counters"]) == set(ENGINE_COUNTER_KEYS)


class TestEngineDurability:
    def test_snapshot_restore_roundtrip(self, tmp_path):
        network = engine_network()
        engine = EmbeddingEngine(network, "MBBE", seed=5)
        for request in make_requests(network, 8):
            engine.submit(request, rng=request.seed)
        path = str(tmp_path / "engine.json")
        engine.save_snapshot(path, extra_counters={"submitted": 8})
        restored, leftover = EmbeddingEngine.restore(network, "MBBE", path, seed=5)
        assert leftover == {"submitted": 8}
        assert restored.counters == engine.counters
        assert state_store.snapshot_to_dict(
            restored.ledger, counters={}
        ) == state_store.snapshot_to_dict(engine.ledger, counters={})

    def test_restore_rejects_foreign_ledger(self):
        network = engine_network()
        other = EmbeddingEngine(engine_network(seed=99), "MBBE")
        with pytest.raises(ConfigurationError, match="different network"):
            EmbeddingEngine(network, "MBBE", ledger=other.ledger)


class TestShardRouter:
    def test_default_and_unknown_resolution(self):
        router = ShardRouter.from_networks(
            {"a": engine_network(1), "b": engine_network(2)}, "MBBE"
        )
        assert router.default_id == "a"
        assert router.get() is router.get("a")
        assert "b" in router and len(router) == 2
        with pytest.raises(ConfigurationError, match="unknown network_id"):
            router.get("zap")

    def test_single_shard_snapshot_is_plain_v1(self, tmp_path):
        network = engine_network()
        router = ShardRouter({DEFAULT_NETWORK_ID: EmbeddingEngine(network, "MBBE")})
        path = str(tmp_path / "snap.json")
        router.save_snapshot(path)
        # A plain service-state document: the pre-sharding loader reads it.
        ledger, _ = state_store.load_snapshot(path, network)
        assert len(ledger) == 0

    def test_advertised_vnf_types_ignores_endpoints(self):
        network = tight_network()
        assert advertised_vnf_types(network) == 1


# -- the golden equivalence gate ------------------------------------------------------


class TestGoldenEquivalence:
    def test_sim_and_strict_service_share_one_state_machine(self):
        """One trace, two drivers, identical decisions / costs / ledger."""
        network = engine_network()
        requests = make_requests(network, 30)
        released = [r.request_id for r in requests[::3]]
        config = ServiceConfig(batch_size=1, queue_limit=64, workers=0)

        async def drive():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    outcomes = []
                    for request in requests:
                        outcomes.append(
                            await client.submit(
                                request.request_id, request.dag, request.source,
                                request.dest, rate=request.rate, seed=request.seed,
                            )
                        )
                    releases = {
                        rid: await client.release(rid) for rid in released
                    }
                doc = state_store.snapshot_to_dict(server.ledger, counters={})
            return outcomes, releases, doc

        outcomes, releases, service_doc = asyncio.run(drive())
        # Sequential awaits pin the decision order to the submission order.
        assert [o.decision_index for o in outcomes] == list(range(len(requests)))

        sim = OnlineSimulator(network, make_solver(config.solver))
        for request, outcome in zip(requests, outcomes):
            result = sim.submit(request, rng=request.seed)
            assert result.success == outcome.accepted
            if result.success:
                assert result.total_cost == outcome.total_cost
        for rid in released:
            if releases[rid]:
                sim.release(rid)
            else:
                assert not sim.engine.is_active(rid)
        sim_doc = state_store.snapshot_to_dict(sim.engine.ledger, counters={})
        assert sim_doc == service_doc

        stats = sim.stats()
        accepted = [o for o in outcomes if o.accepted]
        assert accepted, "workload must accept at least one request"
        assert stats.accepted == len(accepted)
        assert stats.total_cost_accepted == pytest.approx(
            sum(o.total_cost for o in accepted)
        )
