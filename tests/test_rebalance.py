"""The self-healing substrate: guarded live migration, tested bottom-up.

* the transaction — ``EmbeddingEngine.migrate`` re-validates at apply
  time, swaps release-old + reserve-new as one effect, rolls a capacity
  conflict back without a trace, and logs exactly the applied moves;
* the loop — the :class:`~repro.engine.rebalance.Rebalancer` recovers
  real cost on a fragmented substrate while honouring its move budget,
  gain threshold, cooldown rotation, and fault-preemption pause;
* durability — migrations replay from the WAL (and tail into a standby)
  to the primary's exact fingerprint, counters included;
* determinism — identically seeded engines produce identical cycles,
  in-process and through ``OnlineSimulator.run_rebalance_cycle``;
* the wire — the ``rebalance`` verb (cycle + inspect), per-shard stats,
  degraded pause/resume over a live server, the background pump, churny
  load generation, and :class:`ResilientClient` retries.

Plain ``asyncio.run`` per test — no asyncio pytest plugin is assumed.
"""

import asyncio
import dataclasses

import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.engine import (
    DEFAULT_NETWORK_ID,
    REBALANCE_COUNTER_KEYS,
    EmbeddingEngine,
    EmbeddingRequest,
    RebalanceConfig,
    Rebalancer,
    StandbyEngine,
    fragmentation_index,
    shard_wal_path,
)
from repro.exceptions import ConfigurationError, ServiceUnavailable
from repro.faults.model import FaultAction, FaultEvent, FaultTarget
from repro.network.cloud import CloudNetwork
from repro.network.generator import generate_network
from repro.service import (
    EmbeddingServer,
    ResilientClient,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
)
from repro.service.loadgen import run_load
from repro.sfc.generator import generate_dag_sfc
from repro.sim.online import OnlineSimulator
from repro.sim.trace import generate_trace
from repro.solvers.registry import make_solver
from repro.utils.rng import as_generator


def run(coro):
    return asyncio.run(coro)


def tight_network(seed: int = 3) -> CloudNetwork:
    """A deliberately tight substrate: arrival order leaves genuinely
    sub-optimal placements behind once part of the population departs."""
    cfg = NetworkConfig(
        size=40, connectivity=4.0, n_vnf_types=6, deploy_ratio=0.5,
        vnf_capacity=2.0, link_capacity=2.0,
    )
    return generate_network(cfg, rng=seed)


def make_requests(
    network: CloudNetwork, n: int, *, seed: int = 11
) -> list[EmbeddingRequest]:
    gen = as_generator(seed)
    out = []
    for rid in range(n):
        dag = generate_dag_sfc(SfcConfig(size=3), 6, rng=gen)
        src, dst = (int(v) for v in gen.choice(network.num_nodes, size=2, replace=False))
        out.append(
            EmbeddingRequest(
                request_id=rid, dag=dag, source=src, dest=dst,
                flow=FlowConfig(rate=1.0), seed=int(gen.integers(2**31)),
                arrival_index=rid,
            )
        )
    return out


def fill_and_churn(engine: EmbeddingEngine, requests) -> list[int]:
    """Submit a burst, release every other accept; returns surviving ids."""
    accepted = []
    for request in requests:
        if engine.submit(request, rng=request.seed).success:
            accepted.append(request.request_id)
    for rid in accepted[::2]:
        engine.release(rid)
    return [rid for rid in accepted if engine.ledger.is_active(rid)]


def fragmented_engine(seed: int = 3) -> tuple[EmbeddingEngine, list[int]]:
    engine = EmbeddingEngine(tight_network(seed), "MBBE", seed=seed)
    survivors = fill_and_churn(engine, make_requests(engine.network, 60, seed=seed + 100))
    return engine, survivors


EAGER = RebalanceConfig(max_moves=4, candidates=16, min_gain=0.001, cooldown=1)


def first_planned_move(rebalancer: Rebalancer):
    """Plan (never apply) until a move is found; the ledger stays untouched."""
    for _ in range(8):
        scanned, moves = rebalancer.plan()
        if moves:
            return moves[0]
        if scanned == 0:
            break
    raise AssertionError("tight substrate produced no improvable placement")


# -- the migrate transaction ------------------------------------------------------


class TestMigrate:
    def test_departed_request_is_a_noop(self):
        engine, survivors = fragmented_engine()
        move = first_planned_move(Rebalancer(engine, EAGER))
        fingerprint = engine.ledger_fingerprint()
        engine.release(move.request_id)
        after_release = engine.ledger_fingerprint()
        outcome = engine.migrate(move.request_id, move.result)
        assert not outcome.applied
        assert outcome.code == "departed"
        assert engine.ledger_fingerprint() == after_release != fingerprint
        assert engine.rebalance_counters["migrations_applied"] == 0
        assert engine.rebalance_counters["migrations_conflicted"] == 0

    def test_failed_result_is_no_solution(self):
        engine, survivors = fragmented_engine()
        move = first_planned_move(Rebalancer(engine, EAGER))
        failed = dataclasses.replace(
            move.result, success=False, reason="planner gave up"
        )
        fingerprint = engine.ledger_fingerprint()
        outcome = engine.migrate(move.request_id, failed)
        assert not outcome.applied
        assert outcome.code == "no_solution"
        assert outcome.reason == "planner gave up"
        assert engine.ledger_fingerprint() == fingerprint

    def test_applied_migration_swaps_the_reservation_atomically(self):
        engine, survivors = fragmented_engine()
        move = first_planned_move(Rebalancer(engine, EAGER))
        active_before = set(engine.active_ids())
        old_cost = engine.ledger.reservation(move.request_id).cost
        outcome = engine.migrate(move.request_id, move.result)
        assert outcome.applied
        assert outcome.old_cost == pytest.approx(old_cost)
        assert outcome.new_cost == pytest.approx(move.result.total_cost)
        assert outcome.gain > 0
        # Same active population, one reservation re-priced.
        assert set(engine.active_ids()) == active_before
        assert engine.ledger.reservation(move.request_id).cost == pytest.approx(
            move.result.total_cost
        )
        assert engine.rebalance_counters["migrations_applied"] == 1
        assert engine.rebalance_counters["cost_recovered"] == pytest.approx(
            outcome.gain
        )

    def test_capacity_conflict_rolls_back_without_a_trace(self):
        engine, survivors = fragmented_engine()
        move = first_planned_move(Rebalancer(engine, EAGER))
        # A replacement bloated far past any residual: reserve must refuse,
        # and the transaction must restore the old reservation exactly.
        bloated_cost = dataclasses.replace(
            move.result.cost,
            alpha_vnf={key: count * 1000 for key, count in move.result.cost.alpha_vnf.items()},
            alpha_link={key: count * 1000 for key, count in move.result.cost.alpha_link.items()},
        )
        bloated = dataclasses.replace(move.result, cost=bloated_cost)
        fingerprint = engine.ledger_fingerprint()
        outcome = engine.migrate(move.request_id, bloated)
        assert not outcome.applied
        assert outcome.code == "capacity_conflict"
        assert outcome.reason
        assert engine.ledger_fingerprint() == fingerprint
        assert engine.rebalance_counters["migrations_conflicted"] == 1
        assert engine.rebalance_counters["migrations_applied"] == 0
        # The rolled-back request is still live and still releasable.
        assert engine.ledger.is_active(move.request_id)


# -- the rebalance loop -----------------------------------------------------------


class TestRebalancer:
    def test_recovers_cost_on_a_fragmented_substrate(self):
        engine, survivors = fragmented_engine()
        costs_before = {
            rid: engine.ledger.reservation(rid).cost for rid in survivors
        }
        rebalancer = Rebalancer(engine, EAGER)
        reports = [rebalancer.run_cycle() for _ in range(8)]
        applied = sum(report.applied for report in reports)
        recovered = sum(report.cost_recovered for report in reports)
        assert applied > 0
        assert recovered > 0
        assert engine.rebalance_counters["migrations_applied"] == applied
        assert engine.rebalance_counters["cost_recovered"] == pytest.approx(recovered)
        # Migration never changes who holds resources, only at what cost.
        assert set(engine.active_ids()) == set(survivors)
        total_after = sum(engine.ledger.reservation(rid).cost for rid in survivors)
        assert total_after == pytest.approx(sum(costs_before.values()) - recovered)

    def test_move_budget_caps_every_cycle(self):
        engine, _ = fragmented_engine()
        config = RebalanceConfig(max_moves=1, candidates=16, min_gain=0.001, cooldown=1)
        rebalancer = Rebalancer(engine, config)
        reports = [rebalancer.run_cycle() for _ in range(6)]
        assert all(report.planned <= 1 and report.applied <= 1 for report in reports)
        assert sum(report.applied for report in reports) >= 1

    def test_min_gain_threshold_blocks_churn_for_nothing(self):
        engine, _ = fragmented_engine()
        config = RebalanceConfig(max_moves=4, candidates=16, min_gain=1e6, cooldown=1)
        rebalancer = Rebalancer(engine, config)
        fingerprint = engine.ledger_fingerprint()
        reports = [rebalancer.run_cycle() for _ in range(3)]
        assert all(report.planned == 0 and report.applied == 0 for report in reports)
        assert any(report.scanned > 0 for report in reports)
        assert engine.ledger_fingerprint() == fingerprint

    def test_cooldown_rotates_the_scan_instead_of_thrashing(self):
        engine, survivors = fragmented_engine()
        config = RebalanceConfig(
            max_moves=0, candidates=len(survivors) + 1, min_gain=0.001, cooldown=2
        )
        rebalancer = Rebalancer(engine, config)
        first = rebalancer.run_cycle()
        assert first.scanned == len(survivors)
        # Every id is cooling down for the next `cooldown` cycles...
        assert rebalancer.run_cycle().scanned == 0
        assert rebalancer.run_cycle().scanned == 0
        # ...then the whole population becomes eligible again.
        assert rebalancer.run_cycle().scanned == len(survivors)

    def test_pauses_while_degraded_and_resumes_after_recovery(self):
        engine, survivors = fragmented_engine()
        rebalancer = Rebalancer(engine, EAGER)
        event = FaultEvent(time=0, action=FaultAction.FAIL, target=FaultTarget.node(5))
        engine.apply_fault(event, auto_seed=True)
        assert engine.degraded
        report = rebalancer.run_cycle()
        assert report.paused
        assert report.pause_reason == "degraded"
        assert report.scanned == 0 and report.applied == 0
        assert rebalancer.paused_cycles == 1
        engine.apply_fault(
            FaultEvent(time=1, action=FaultAction.RECOVER, target=FaultTarget.node(5))
        )
        assert not engine.degraded
        resumed = rebalancer.run_cycle()
        assert not resumed.paused
        assert resumed.scanned > 0

    def test_pauses_while_repairs_are_in_flight(self):
        engine, _ = fragmented_engine()
        rebalancer = Rebalancer(engine, EAGER)
        report = rebalancer.run_cycle(repair_in_flight=True)
        assert report.paused
        assert report.pause_reason == "repair_in_flight"
        stats = rebalancer.stats()
        assert stats["cycles"] == 1
        assert stats["paused_cycles"] == 1

    def test_fragmentation_index_bounds_and_sensitivity(self):
        engine, _ = fragmented_engine()
        pristine = EmbeddingEngine(tight_network(), "MBBE", seed=0)
        # Even residuals (nothing reserved) score 0; any load skews it up.
        assert fragmentation_index(pristine) == pytest.approx(0.0)
        skewed = fragmentation_index(engine)
        assert 0.0 < skewed < 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_moves"):
            RebalanceConfig(max_moves=-1)
        with pytest.raises(ValueError, match="candidates"):
            RebalanceConfig(candidates=0)
        with pytest.raises(ValueError, match="min_gain"):
            RebalanceConfig(min_gain=-0.1)
        with pytest.raises(ValueError, match="cooldown"):
            RebalanceConfig(cooldown=-2)

    def test_stats_block_carries_engine_totals(self):
        engine, _ = fragmented_engine()
        rebalancer = Rebalancer(engine, EAGER)
        rebalancer.run_cycle()
        stats = rebalancer.stats()
        for key in REBALANCE_COUNTER_KEYS:
            assert stats[key] == engine.rebalance_counters[key]
        assert stats["cycles"] == 1
        assert 0.0 <= stats["fragmentation"] < 1.0


# -- durability: migrations replay and tail like any other record -----------------


class TestRebalanceDurability:
    def test_wal_replay_and_standby_reproduce_migrated_state(self, tmp_path):
        network = tight_network(seed=9)
        wal_path = shard_wal_path(str(tmp_path), DEFAULT_NETWORK_ID)
        engine = EmbeddingEngine(network, "MBBE", seed=9)
        engine.attach_wal_file(wal_path, network_id=DEFAULT_NETWORK_ID)
        standby = StandbyEngine(network, "MBBE", wal_path, seed=9)

        fill_and_churn(engine, make_requests(network, 60, seed=109))
        rebalancer = Rebalancer(engine, EAGER)
        applied = 0
        for _ in range(8):
            applied += rebalancer.run_cycle().applied
            if applied:
                break
        assert applied >= 1
        assert engine.wal is not None
        engine.wal.sync()

        restored, _ = EmbeddingEngine.restore(
            network, make_solver("MBBE"), None, seed=9, wal_path=wal_path
        )
        assert restored.ledger_fingerprint() == engine.ledger_fingerprint()
        assert restored.rebalance_counters == engine.rebalance_counters

        standby.poll()
        promoted = standby.promote(attach_writer=False)
        assert promoted.ledger_fingerprint() == engine.ledger_fingerprint()
        assert promoted.rebalance_counters == engine.rebalance_counters
        engine.detach_wal()


# -- determinism: same seed, same decisions ---------------------------------------


class TestDecisionIdentity:
    def test_identically_seeded_rebalancers_make_identical_cycles(self):
        first_engine, _ = fragmented_engine(seed=3)
        second_engine, _ = fragmented_engine(seed=3)
        first = Rebalancer(first_engine, EAGER)
        second = Rebalancer(second_engine, EAGER)
        for _ in range(5):
            a, b = first.run_cycle(), second.run_cycle()
            assert a.to_dict() == b.to_dict()
            assert first_engine.ledger_fingerprint() == second_engine.ledger_fingerprint()

    def test_online_simulator_cycle_matches_direct_rebalancer(self):
        network = tight_network(seed=3)
        sim = OnlineSimulator(network, make_solver("MBBE"))
        shadow = EmbeddingEngine(tight_network(seed=3), make_solver("MBBE"))
        requests = make_requests(network, 40, seed=103)
        for request in requests:
            sim.submit(request, rng=request.seed)
            shadow.submit(request, rng=request.seed)
        for rid in list(sim.active_requests())[::2]:
            sim.release(rid)
            shadow.release(rid)
        direct = Rebalancer(shadow, EAGER)
        for _ in range(4):
            assert (
                sim.run_rebalance_cycle(EAGER).to_dict()
                == direct.run_cycle().to_dict()
            )
        assert sim.engine.ledger_fingerprint() == shadow.ledger_fingerprint()


# -- the wire: verb, stats, pump, churn, retries ----------------------------------


def service_network(seed: int = 17) -> CloudNetwork:
    cfg = NetworkConfig(
        size=30, connectivity=4.0, n_vnf_types=6, deploy_ratio=0.5,
        vnf_capacity=2.0, link_capacity=2.0,
    )
    return generate_network(cfg, rng=seed)


def make_workload(network, n: int, *, seed: int = 11):
    """n submit tuples (rid, dag, src, dst, rate, solver_seed)."""
    gen = as_generator(seed)
    out = []
    for rid in range(n):
        dag = generate_dag_sfc(SfcConfig(size=3), 6, rng=gen)
        src, dst = (int(v) for v in gen.choice(network.num_nodes, size=2, replace=False))
        out.append((rid, dag, src, dst, 1.0, int(gen.integers(2**31))))
    return out


async def churny_fill(client: ServiceClient, network, n: int, *, seed: int = 11):
    """Fill-then-churn over the wire; returns the surviving ids."""
    acked = []
    for rid, dag, src, dst, rate, s in make_workload(network, n, seed=seed):
        outcome = await client.submit(rid, dag, src, dst, rate=rate, seed=s)
        if outcome.accepted:
            acked.append(rid)
    for rid in acked[::2]:
        await client.release(rid)
    return [rid for rid in acked if rid not in set(acked[::2])]


class TestServiceRebalance:
    def test_rebalance_verb_runs_a_cycle_and_inspect_does_not(self):
        network = service_network()

        async def drive():
            async with EmbeddingServer(network, ServiceConfig(workers=0)) as server:
                host, port = server.address
                client = await ServiceClient.connect(host, port)
                await churny_fill(client, network, 20)
                cycled = await client.rebalance()
                inspected = await client.rebalance(inspect=True)
                stats = await client.stats()
                await client.close()
            return cycled, inspected, stats

        cycled, inspected, stats = run(drive())
        assert cycled["type"] == "rebalanced"
        assert cycled["cycle"]["cycle"] == 0
        assert not cycled["cycle"]["paused"]
        assert cycled["cycle"]["scanned"] > 0
        assert cycled["rebalance"]["cycles"] == 1
        # Inspection reports totals without enqueuing a cycle.
        assert inspected["cycle"] is None
        assert inspected["rebalance"]["cycles"] == 1
        shard = stats["shards"][DEFAULT_NETWORK_ID]
        assert shard["rebalance"]["cycles"] == 1
        assert "fragmentation" in shard["rebalance"]

    def test_verb_cycle_pauses_while_degraded_and_resumes(self):
        network = service_network(seed=23)

        async def drive():
            async with EmbeddingServer(network, ServiceConfig(workers=0)) as server:
                host, port = server.address
                client = await ServiceClient.connect(host, port)
                await churny_fill(client, network, 16, seed=5)
                engine = server.router.default
                engine.apply_fault(
                    FaultEvent(time=0, action=FaultAction.FAIL, target=FaultTarget.node(3)),
                    auto_seed=True,
                )
                paused = await client.rebalance()
                engine.apply_fault(
                    FaultEvent(
                        time=1, action=FaultAction.RECOVER, target=FaultTarget.node(3)
                    )
                )
                resumed = await client.rebalance()
                stats = await client.stats()
                await client.close()
            return paused, resumed, stats

        paused, resumed, stats = run(drive())
        assert paused["cycle"]["paused"]
        assert paused["cycle"]["pause_reason"] == "degraded"
        assert not resumed["cycle"]["paused"]
        assert stats["shards"][DEFAULT_NETWORK_ID]["rebalance"]["paused_cycles"] >= 1

    def test_background_pump_runs_cycles(self):
        network = service_network(seed=29)
        config = ServiceConfig(
            workers=0, rebalance=True, rebalance_interval=0.03,
            rebalance_min_gain=0.001, rebalance_cooldown=1,
        )

        async def drive():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                client = await ServiceClient.connect(host, port)
                await churny_fill(client, network, 16, seed=7)
                deadline = asyncio.get_running_loop().time() + 5.0
                while True:
                    stats = await client.stats()
                    cycles = stats["shards"][DEFAULT_NETWORK_ID]["rebalance"]["cycles"]
                    if cycles >= 2 or asyncio.get_running_loop().time() > deadline:
                        break
                    await asyncio.sleep(0.05)
                await client.close()
            return cycles

        assert run(drive()) >= 2


class TestLoadgenChurn:
    def test_churn_fraction_releases_early(self):
        network = service_network(seed=31)
        trace = generate_trace(
            steps=20, n_nodes=network.num_nodes, n_vnf_types=6,
            sfc=SfcConfig(size=3), arrival_probability=0.9, mean_hold=1000.0,
            rng=13,
        )

        async def drive(churn):
            async with EmbeddingServer(network, ServiceConfig(workers=0)) as server:
                host, port = server.address
                client = await ServiceClient.connect(host, port)
                # release=False: only the churned share ever departs.
                report = await run_load(
                    client, trace, tick_s=0.0, release=False, churn=churn, rng=41
                )
                await client.close()
            return report

        churned = run(drive(1.0))
        untouched = run(drive(0.0))
        assert churned.accepted > 0
        assert churned.churned == churned.accepted
        assert churned.released == churned.churned
        assert untouched.churned == 0
        assert untouched.released == 0
        assert untouched.to_dict()["churned"] == 0

    def test_churn_fraction_is_validated(self):
        trace = generate_trace(
            steps=2, n_nodes=4, n_vnf_types=2, sfc=SfcConfig(size=2), rng=1
        )
        with pytest.raises(ConfigurationError, match="churn"):
            run(run_load(None, trace, churn=1.5))


class TestResilientRebalance:
    def test_retries_then_raises_typed_error_when_server_is_gone(self):
        network = service_network(seed=37)

        async def drive():
            server = EmbeddingServer(network, ServiceConfig(workers=0))
            host, port = await server.start()
            await server.stop()
            policy = RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.02)
            rc = ResilientClient(host, port, policy=policy, rng=1)
            with pytest.raises(ServiceUnavailable):
                await rc.rebalance()
            with pytest.raises(ServiceUnavailable):
                await rc.promote()
            retries = rc.retries
            await rc.close()
            return retries

        assert run(drive()) >= 2

    def test_rebalance_and_promote_ride_through_a_live_server(self):
        network = service_network(seed=41)

        async def drive():
            async with EmbeddingServer(network, ServiceConfig(workers=0)) as server:
                host, port = server.address
                policy = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.05)
                async with ResilientClient(host, port, policy=policy, rng=2) as rc:
                    reply = await rc.rebalance(inspect=True)
            return reply

        reply = run(drive())
        assert reply["type"] == "rebalanced"
        assert reply["rebalance"]["cycles"] == 0
