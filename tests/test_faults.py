"""Unit tests for the fault-injection subsystem (`repro.faults`).

Covers the fault model (scripts, state, degraded views), the per-request
impact analysis, and every rung of the reroute → re-embed → evict repair
ladder on small deterministic substrates.
"""

import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.exceptions import ConfigurationError
from repro.faults.impact import assess_impact
from repro.faults.model import (
    FaultAction,
    FaultEvent,
    FaultScript,
    FaultSpec,
    FaultState,
    FaultTarget,
    degrade_network,
    generate_fault_script,
    script_from_dict,
    script_to_dict,
)
from repro.faults.repair import RepairAction
from repro.network.cloud import CloudNetwork
from repro.network.generator import generate_network
from repro.sfc.builder import DagSfcBuilder
from repro.sim.online import OnlineSimulator, SfcRequest
from repro.sim.trace import ArrivalTrace, TraceEvent, generate_trace, replay_with_faults
from repro.solvers import MbbeEmbedder

from .conftest import build_line_graph, build_square_graph


def fail(target: FaultTarget, *, time: int = 0) -> FaultEvent:
    return FaultEvent(time=time, action=FaultAction.FAIL, target=target)


def recover(target: FaultTarget, *, time: int = 0) -> FaultEvent:
    return FaultEvent(time=time, action=FaultAction.RECOVER, target=target)


def single_vnf_request(rid: int, source: int, dest: int) -> SfcRequest:
    dag = DagSfcBuilder().single(1).build()
    return SfcRequest(rid, dag, source, dest, FlowConfig(rate=1.0))


class TestFaultModel:
    def test_script_generation_is_deterministic(self, small_network):
        spec = FaultSpec(horizon=50, node_mtbf=20.0, link_mtbf=15.0, instance_mtbf=25.0)
        a = generate_fault_script(spec, small_network, rng=11)
        b = generate_fault_script(spec, small_network, rng=11)
        assert a.events == b.events
        c = generate_fault_script(spec, small_network, rng=12)
        assert a.events != c.events

    def test_generated_scripts_return_to_pristine(self, small_network):
        # Every FAIL is eventually matched by a RECOVER (possibly past the
        # horizon), so replaying the full script ends with nothing dead.
        spec = FaultSpec(horizon=40, node_mtbf=10.0, link_mtbf=8.0, instance_mtbf=12.0)
        script = generate_fault_script(spec, small_network, rng=3)
        assert len(script) > 0
        state = FaultState()
        for event in script:
            state.apply(event)
        assert not state.any_dead

    def test_script_sorts_recoveries_before_failures(self):
        link = FaultTarget.link(0, 1)
        node = FaultTarget.node(2)
        script = FaultScript(
            events=(fail(link, time=5), recover(node, time=5), fail(node, time=3)),
            horizon=10,
        )
        assert [(e.time, e.action) for e in script] == [
            (3, FaultAction.FAIL),
            (5, FaultAction.RECOVER),
            (5, FaultAction.FAIL),
        ]

    def test_script_round_trip(self, small_network):
        spec = FaultSpec(horizon=30, node_mtbf=12.0, instance_mtbf=9.0)
        script = generate_fault_script(spec, small_network, rng=5)
        payload = script_to_dict(script)
        assert payload["format"] == "repro.dag-sfc"
        assert payload["kind"] == "fault-script"
        restored = script_from_dict(payload)
        assert restored.events == script.events
        assert restored.horizon == script.horizon

    def test_script_from_dict_validates_envelope(self):
        with pytest.raises(ConfigurationError, match="not a"):
            script_from_dict({"format": "something-else", "kind": "fault-script"})
        good = script_to_dict(FaultScript(events=(), horizon=1))
        good["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            script_from_dict(good)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(horizon=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(horizon=10, node_mtbf=-1.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(horizon=10, node_mttr=0.5)

    def test_state_apply_reports_noops(self):
        state = FaultState()
        link = FaultTarget.link(1, 0)  # canonicalized to (0, 1)
        assert state.apply(fail(link)) is True
        assert state.apply(fail(link)) is False
        assert state.any_dead
        assert state.apply(recover(link)) is True
        assert state.apply(recover(link)) is False
        assert not state.any_dead

    def test_node_death_is_transitive(self):
        # A dead node implies its links and instances are down without
        # separate events — and recovery brings exactly them back.
        state = FaultState()
        state.apply(fail(FaultTarget.node(1)))
        assert not state.node_alive(1)
        assert not state.link_alive(0, 1)
        assert not state.instance_alive(1, 3)
        assert state.link_alive(2, 3)
        state.apply(recover(FaultTarget.node(1)))
        assert state.link_alive(0, 1)
        assert state.instance_alive(1, 3)

    def test_independent_link_death_survives_node_recovery(self):
        state = FaultState()
        state.apply(fail(FaultTarget.link(0, 1)))
        state.apply(fail(FaultTarget.node(0)))
        state.apply(recover(FaultTarget.node(0)))
        assert state.node_alive(0)
        assert not state.link_alive(0, 1)

    def test_degrade_network_removes_dead_elements_only(self):
        net = CloudNetwork(build_square_graph())
        net.deploy(1, 1, price=2.0, capacity=10.0)
        net.deploy(3, 1, price=2.0, capacity=10.0)
        state = FaultState()
        state.apply(fail(FaultTarget.link(0, 1)))
        state.apply(fail(FaultTarget.node(3)))
        state.apply(fail(FaultTarget.instance(1, 1)))
        view = degrade_network(net, state)
        assert not view.graph.has_link(0, 1)
        assert not view.graph.has_node(3)
        assert not view.graph.has_link(2, 3)  # incident to the dead node
        assert view.graph.has_link(1, 2)
        assert not any(True for _ in view.deployments.all_instances())
        # The input network is untouched.
        assert net.graph.has_link(0, 1)
        assert net.graph.has_node(3)
        assert sum(1 for _ in net.deployments.all_instances()) == 2

    def test_no_faults_degrades_to_equal_network(self, small_network):
        view = degrade_network(small_network, FaultState())
        assert sorted(view.graph.nodes()) == sorted(small_network.graph.nodes())
        assert sorted(l.key for l in view.graph.links()) == sorted(
            l.key for l in small_network.graph.links()
        )


class TestImpactAnalysis:
    @pytest.fixture
    def embedded(self):
        """A single-VNF embedding on the square: place at 1, path 0-1-2."""
        net = CloudNetwork(build_square_graph())
        net.deploy(1, 1, price=2.0, capacity=10.0)
        result = MbbeEmbedder().embed(
            net, DagSfcBuilder().single(1).build(), 0, 2, FlowConfig(rate=1.0), rng=0
        )
        assert result.success
        return result.embedding

    def test_intact_when_nothing_dead(self, embedded):
        impact = assess_impact(0, embedded, FaultState())
        assert not impact.affected
        assert impact.describe() == "intact"

    def test_broken_path_is_reroutable(self, embedded):
        state = FaultState()
        state.apply(fail(FaultTarget.link(1, 2)))
        impact = assess_impact(0, embedded, state)
        assert impact.affected
        assert impact.placements_intact
        assert impact.broken_inter or impact.broken_inner

    def test_dead_instance_forces_reembed(self, embedded):
        state = FaultState()
        state.apply(fail(FaultTarget.instance(1, 1)))
        impact = assess_impact(0, embedded, state)
        assert impact.affected
        assert impact.dead_placements
        assert not impact.placements_intact
        assert not impact.endpoints_dead

    def test_dead_endpoint_is_unrepairable(self, embedded):
        state = FaultState()
        state.apply(fail(FaultTarget.node(2)))
        impact = assess_impact(0, embedded, state)
        assert impact.endpoints_dead
        assert not impact.placements_intact


class TestRepairLadder:
    def make_square_sim(self, *, extra_instance: bool = False) -> OnlineSimulator:
        """Square substrate, type 1 deployed at node 1 (and 3 if asked)."""
        net = CloudNetwork(build_square_graph())
        net.deploy(1, 1, price=2.0, capacity=10.0)
        if extra_instance:
            net.deploy(3, 1, price=8.0, capacity=10.0)
        return OnlineSimulator(net, MbbeEmbedder())

    def test_link_failure_reroutes(self):
        sim = self.make_square_sim()
        assert sim.submit(single_vnf_request(0, 0, 2), rng=1).success
        outcomes = sim.apply_fault(fail(FaultTarget.link(1, 2)), rng=2)
        assert [o.action for o in outcomes] == [RepairAction.REROUTED]
        assert outcomes[0].survived
        assert outcomes[0].cost_delta >= 0
        # The repaired request releases cleanly: capacity is conserved.
        sim.release(0)
        assert not any(True for _ in sim.state.used_links())
        assert not any(True for _ in sim.state.used_vnfs())

    def test_instance_failure_reembeds_onto_the_alternative(self):
        sim = self.make_square_sim(extra_instance=True)
        result = sim.submit(single_vnf_request(0, 0, 2), rng=1)
        assert result.success
        outcomes = sim.apply_fault(fail(FaultTarget.instance(1, 1)), rng=2)
        assert [o.action for o in outcomes] == [RepairAction.RE_EMBEDDED]
        # The cheap instance died; the repair pays the expensive one.
        assert outcomes[0].new_cost > result.total_cost
        assert "re_embed" in outcomes[0].attempts
        sim.release(0)
        assert not any(True for _ in sim.state.used_links())
        assert not any(True for _ in sim.state.used_vnfs())

    def test_instance_failure_without_alternative_evicts(self):
        sim = self.make_square_sim()
        assert sim.submit(single_vnf_request(0, 0, 2), rng=1).success
        outcomes = sim.apply_fault(fail(FaultTarget.instance(1, 1)), rng=2)
        assert [o.action for o in outcomes] == [RepairAction.EVICTED]
        assert not outcomes[0].survived
        assert outcomes[0].new_cost == 0.0
        # Eviction already returned everything; the id is gone.
        assert list(sim.active_requests()) == []
        assert not any(True for _ in sim.state.used_links())
        assert not any(True for _ in sim.state.used_vnfs())

    def test_dead_endpoint_evicts_without_solving(self):
        sim = self.make_square_sim(extra_instance=True)
        assert sim.submit(single_vnf_request(0, 0, 2), rng=1).success
        outcomes = sim.apply_fault(fail(FaultTarget.node(2)), rng=2)
        assert [o.action for o in outcomes] == [RepairAction.EVICTED]
        assert outcomes[0].attempts == ()
        assert "endpoints dead" in outcomes[0].detail

    def test_recovery_restores_visibility(self):
        # 0-1-2 line: node 1 is the only route and the only host. While it
        # is down new arrivals fail; after recovery they succeed again.
        net = CloudNetwork(build_line_graph(3))
        net.deploy(1, 1, price=2.0, capacity=10.0)
        sim = OnlineSimulator(net, MbbeEmbedder())
        assert sim.apply_fault(fail(FaultTarget.node(1)), rng=0) == []
        assert not sim.submit(single_vnf_request(0, 0, 2), rng=1).success
        assert sim.apply_fault(recover(FaultTarget.node(1)), rng=0) == []
        assert sim.submit(single_vnf_request(1, 0, 2), rng=1).success

    def test_unaffected_requests_are_left_alone(self):
        sim = self.make_square_sim()
        result = sim.submit(single_vnf_request(0, 0, 2), rng=1)
        assert result.success
        # Fail a link the embedding does not touch: nothing to repair.
        used = {key for key, _ in sim.state.used_links()}
        untouched = next(
            link.key for link in sim.network.graph.links() if link.key not in used
        )
        outcomes = sim.apply_fault(fail(FaultTarget.link(*untouched)), rng=2)
        assert outcomes == []
        assert sim.stats().repairs_rerouted == 0
        assert list(sim.active_requests()) == [0]


class TestReplayWithFaults:
    def test_evicted_requests_are_not_double_released(self):
        # Request 0 is evicted at step 2 (its only host dies) but its trace
        # departure is step 5 — the replay must skip the stale departure.
        net = CloudNetwork(build_line_graph(3))
        net.deploy(1, 1, price=2.0, capacity=10.0)
        sim = OnlineSimulator(net, MbbeEmbedder())
        dag = DagSfcBuilder().single(1).build()
        trace = ArrivalTrace(
            events=(
                TraceEvent(
                    step=0,
                    request=SfcRequest(0, dag, 0, 2, FlowConfig(rate=1.0)),
                    departure_step=5,
                ),
            ),
            steps=8,
        )
        script = FaultScript(events=(fail(FaultTarget.instance(1, 1), time=2),), horizon=8)
        outcomes = replay_with_faults(trace, script, sim, rng=0)
        assert [o.action for o in outcomes] == [RepairAction.EVICTED]
        stats = sim.stats()
        assert stats.accepted == 1
        assert stats.evicted == 1
        assert stats.departed == 0
        assert stats.active == 0
        assert not any(True for _ in sim.state.used_links())

    def test_full_replay_conserves_capacity(self, small_config):
        net = generate_network(small_config, rng=7)
        trace = generate_trace(
            steps=40,
            n_nodes=small_config.size,
            n_vnf_types=small_config.n_vnf_types,
            sfc=SfcConfig(size=3),
            rng=8,
        )
        spec = FaultSpec(horizon=40, node_mtbf=15.0, link_mtbf=10.0, instance_mtbf=18.0)
        script = generate_fault_script(spec, net, rng=9)
        sim = OnlineSimulator(net, MbbeEmbedder())
        outcomes = replay_with_faults(trace, script, sim, rng=10)
        stats = sim.stats()
        assert stats.evicted == sum(
            1 for o in outcomes if o.action is RepairAction.EVICTED
        )
        assert 0.0 <= stats.survival_ratio <= 1.0
        for rid in list(sim.active_requests()):
            sim.release(rid)
        assert not any(True for _ in sim.state.used_links())
        assert not any(True for _ in sim.state.used_vnfs())
