"""The constraint-plugin framework: specs, solver/engine/wire integration.

Covers the PR's acceptance surface end to end:

* spec/wire roundtrips for all three shipped plugins and the CLI mini-spec;
* solver-side pruning and pricing (delay budgets with LARAC escalation,
  anti-affinity count pruning, zone pricing and crossing caps);
* engine integration (commit-time re-validation, migrate refusal, repair
  under constraints, WAL payload roundtrips);
* the service protocol v2 field (omitted = backward compatible);
* hypothesis properties: every accepted embedding satisfies the registered
  set, and the empty set is decision-identical to the historical path.
"""

from __future__ import annotations

import asyncio
import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.delay import dag_delay
from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.constraints import (
    AntiAffinityConstraint,
    ConstraintSet,
    ConstraintViolationError,
    DelayBudgetConstraint,
    ZonePricingConstraint,
    constraint_from_spec,
    constraints_from_specs,
    parse_constraint_arg,
    parse_constraint_args,
    registered_kinds,
)
from repro.engine import EmbeddingEngine, EmbeddingRequest
from repro.exceptions import ConfigurationError, ProtocolError, WalError
from repro.faults.model import FaultAction, FaultEvent, FaultTarget
from repro.faults.repair import RepairAction
from repro.network.cloud import CloudNetwork
from repro.network.generator import generate_network
from repro.network.graph import Graph
from repro.service import protocol
from repro.sfc.builder import DagSfcBuilder
from repro.sfc.generator import generate_dag_sfc
from repro.solvers import BbeEmbedder, MbbeEmbedder
from repro.solvers.registry import make_solver
from repro.wal import records as wal_records

from .conftest import build_line_graph

# ---------------------------------------------------------------------------
# substrates used across the file


def _cloud(links, deployments, *, n_nodes):
    """A tiny CloudNetwork: links = (u, v, price), deployments = (node, vnf, price)."""
    g = Graph()
    g.add_nodes(range(n_nodes))
    for u, v, price in links:
        g.add_link(u, v, price=price, capacity=100.0)
    net = CloudNetwork(g)
    for node, vnf, price in deployments:
        net.deploy(node, vnf, price=price, capacity=100.0)
    return net


def chain_dag(*types):
    b = DagSfcBuilder()
    for t in types:
        b.single(t)
    return b.build()


# ---------------------------------------------------------------------------
# ConstraintSet mechanics


class TestConstraintSet:
    def test_empty_set_is_falsy_and_canonical(self):
        assert not ConstraintSet.EMPTY
        assert ConstraintSet.coerce(None) is ConstraintSet.EMPTY
        assert ConstraintSet.coerce([]) == ConstraintSet.EMPTY
        cset = ConstraintSet([DelayBudgetConstraint(budget=5.0)])
        assert ConstraintSet.coerce(cset) is cset
        assert len(cset) == 1 and bool(cset)

    def test_equality_and_hash_follow_members(self):
        a = ConstraintSet([DelayBudgetConstraint(budget=5.0)])
        b = ConstraintSet([DelayBudgetConstraint(budget=5.0)])
        c = ConstraintSet([DelayBudgetConstraint(budget=6.0)])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_link_weight_is_price_plus_surcharges(self):
        zones = ZonePricingConstraint(count=2, multiplier=3.0)
        delay = DelayBudgetConstraint(budget=9.0, per_hop_delay=0.5, lam=2.0)
        cset = ConstraintSet([zones, delay])
        assert cset.prices_links
        g = build_line_graph(3, price=4.0)
        cross = g.link(0, 1)  # zones 0 -> 1 under node % 2
        # zone surcharge 4*(3-1)=8, delay surcharge lam*per_hop=1.0
        assert cset.link_surcharge(cross) == pytest.approx(9.0)
        assert cset.link_weight(cross) == pytest.approx(13.0)

    def test_unpriced_set_reports_no_link_pricing(self):
        cset = ConstraintSet([AntiAffinityConstraint(spread=(1,))])
        assert not cset.prices_links


# ---------------------------------------------------------------------------
# specs, registry, CLI mini-specs


class TestSpecs:
    @pytest.mark.parametrize(
        "constraint",
        [
            DelayBudgetConstraint(budget=7.5, per_hop_delay=0.2, initial_lambda=2.0),
            AntiAffinityConstraint(pairs=((1, 2), (3, 5)), spread=(4,)),
            ZonePricingConstraint(count=3, multiplier=2.5, max_crossings=2),
            ZonePricingConstraint(assignments=((0, 1), (5, 0)), multiplier=1.5),
        ],
    )
    def test_spec_roundtrip(self, constraint):
        rebuilt = constraint_from_spec(constraint.spec())
        assert rebuilt == constraint
        assert rebuilt.spec() == constraint.spec()

    def test_set_specs_roundtrip_preserves_order(self):
        cset = ConstraintSet(
            [
                ZonePricingConstraint(count=2),
                DelayBudgetConstraint(budget=4.0),
            ]
        )
        rebuilt = constraints_from_specs(cset.specs())
        assert rebuilt == cset
        assert [c.kind for c in rebuilt] == ["zones", "delay"]

    def test_registered_kinds_include_the_shipped_plugins(self):
        kinds = registered_kinds()
        for kind in ("delay", "affinity", "zones", "completeness", "capacity"):
            assert kind in kinds

    def test_unknown_kind_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown constraint kind"):
            constraint_from_spec({"kind": "teleport"})
        with pytest.raises(ConfigurationError, match="missing its kind"):
            constraint_from_spec({"budget": 3})

    def test_cli_minispec_parses_values_and_repeats(self):
        c = parse_constraint_arg("delay:budget=12,per_hop_delay=0.5")
        assert c == DelayBudgetConstraint(budget=12.0, per_hop_delay=0.5)
        a = parse_constraint_arg("affinity:pair=1-2,pair=0-3,spread=4")
        assert a.pairs == ((0, 3), (1, 2))
        assert a.spread == (4,)
        cset = parse_constraint_args(["zones:count=2", "delay:budget=6"])
        assert [c.kind for c in cset] == ["zones", "delay"]
        assert parse_constraint_args(None) is ConstraintSet.EMPTY

    def test_cli_minispec_rejects_malformed_options(self):
        with pytest.raises(ConfigurationError):
            parse_constraint_arg("delay:budget")
        with pytest.raises(ConfigurationError):
            parse_constraint_arg(":budget=1")


# ---------------------------------------------------------------------------
# delay budgets (LARAC)


class TestDelayBudget:
    def larac_net(self):
        # 0-1-2-3-4 at price 1 plus a 1-hop shortcut 1-3 at price 4; the
        # cheap chain route needs 4 hops, the shortcut route 3.
        return _cloud(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (1, 3, 4.0)],
            [(1, 1, 1.0), (3, 2, 1.0)],
            n_nodes=5,
        )

    def test_reprice_escalates_lambda(self):
        c = DelayBudgetConstraint(budget=5.0, initial_lambda=2.0)
        assert not c.prices_links
        r1 = c.repriced(None, None, None)
        assert r1.lam == 2.0 and r1.prices_links
        r2 = r1.repriced(None, None, None)
        assert r2.lam == 4.0
        # Repricing hops is pointless when hops carry no delay.
        assert DelayBudgetConstraint(per_hop_delay=0.0).repriced(None, None, None) is None

    def test_larac_loop_reroutes_inside_the_budget(self):
        net = self.larac_net()
        dag = chain_dag(1, 2)
        budget = DelayBudgetConstraint(
            budget=3.0, per_hop_delay=1.0, processing_delay=0.0,
            merger_delay=0.0, initial_lambda=3.0,
        )
        unconstrained = MbbeEmbedder().embed(net, dag, 0, 4, FlowConfig())
        assert unconstrained.success
        assert dag_delay(unconstrained.embedding, budget.model()) == pytest.approx(4.0)

        result = MbbeEmbedder().embed(
            net, dag, 0, 4, FlowConfig(), constraints=[budget]
        )
        assert result.success
        assert result.stats["constraint_rounds"] == 2  # one reprice round
        assert dag_delay(result.embedding, budget.model()) == pytest.approx(3.0)
        # The Lagrangian detour is costlier in eq. 1 terms — by design: the
        # surcharge steers search, the objective keeps the real prices.
        assert result.total_cost > unconstrained.total_cost

    def test_impossible_budget_fails_with_constraint_reason(self):
        net = self.larac_net()
        result = MbbeEmbedder().embed(
            net, chain_dag(1, 2), 0, 4, FlowConfig(),
            constraints=[DelayBudgetConstraint(budget=1.0, per_hop_delay=1.0,
                                               processing_delay=0.0)],
        )
        assert not result.success
        assert result.embedding is None

    def test_verify_flags_over_budget_embeddings(self):
        net = self.larac_net()
        ok = MbbeEmbedder().embed(net, chain_dag(1, 2), 0, 4, FlowConfig())
        assert ok.success
        tight = DelayBudgetConstraint(budget=0.5, processing_delay=0.0)
        with pytest.raises(ConstraintViolationError, match="exceeds budget"):
            tight.verify(net, ok.embedding, FlowConfig())
        generous = DelayBudgetConstraint(budget=100.0)
        generous.verify(net, ok.embedding, FlowConfig())  # no raise


# ---------------------------------------------------------------------------
# anti-affinity


class TestAntiAffinity:
    def test_pair_rule_moves_the_rival_category(self):
        # Types 1 and 2 are both cheapest on node 1; type 2 has a pricy
        # fallback on node 2.
        net = _cloud(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)],
            [(1, 1, 1.0), (1, 2, 1.0), (2, 2, 50.0)],
            n_nodes=4,
        )
        dag = chain_dag(1, 2)
        free = MbbeEmbedder().embed(net, dag, 0, 3, FlowConfig())
        assert free.success
        assert len({free.embedding.placements[p] for p in dag.positions()}) == 1

        rule = AntiAffinityConstraint(pairs=((1, 2),))
        kept = MbbeEmbedder().embed(net, dag, 0, 3, FlowConfig(), constraints=[rule])
        assert kept.success
        nodes = {kept.embedding.placements[p] for p in dag.positions()}
        assert len(nodes) == 2
        rule.verify(net, kept.embedding, FlowConfig())  # no raise
        with pytest.raises(ConstraintViolationError, match="share node"):
            rule.verify(net, free.embedding, FlowConfig())
        assert kept.total_cost > free.total_cost

    def test_pair_rule_with_no_alternative_is_infeasible(self):
        net = _cloud(
            [(0, 1, 1.0), (1, 2, 1.0)],
            [(1, 1, 1.0), (1, 2, 1.0)],
            n_nodes=3,
        )
        result = MbbeEmbedder().embed(
            net, chain_dag(1, 2), 0, 2, FlowConfig(),
            constraints=[AntiAffinityConstraint(pairs=((1, 2),))],
        )
        assert not result.success

    def test_spread_rule_unstacks_a_category(self):
        net = _cloud(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)],
            [(1, 1, 1.0), (2, 1, 20.0)],
            n_nodes=4,
        )
        dag = chain_dag(1, 1)
        free = MbbeEmbedder().embed(net, dag, 0, 3, FlowConfig())
        assert free.success
        assert len({free.embedding.placements[p] for p in dag.positions()}) == 1

        rule = AntiAffinityConstraint(spread=(1,))
        spreadout = MbbeEmbedder().embed(net, dag, 0, 3, FlowConfig(), constraints=[rule])
        assert spreadout.success
        assert len({spreadout.embedding.placements[p] for p in dag.positions()}) == 2
        with pytest.raises(ConstraintViolationError, match="stacked"):
            rule.verify(net, free.embedding, FlowConfig())

    def test_constructor_rejects_degenerate_rules(self):
        with pytest.raises(ConfigurationError):
            AntiAffinityConstraint()
        with pytest.raises(ConfigurationError):
            constraint_from_spec({"kind": "affinity", "pairs": ["3-3"]})


# ---------------------------------------------------------------------------
# zone pricing


class TestZones:
    def zoned_net(self):
        # 0 and 2 share zone 0; the cheap route detours through zone 1.
        return _cloud(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 9.0)],
            [(0, 1, 1.0)],
            n_nodes=3,
        )

    ZONED = ZonePricingConstraint(
        assignments=((0, 0), (1, 1), (2, 0)), multiplier=1.0, max_crossings=0
    )

    def test_zone_partition_and_crossings(self):
        rr = ZonePricingConstraint(count=3)
        assert [rr.zone_of(n) for n in range(5)] == [0, 1, 2, 0, 1]
        assert rr.crosses(0, 1) and not rr.crosses(0, 3)
        explicit = self.ZONED
        assert explicit.zone_of(1) == 1 and explicit.zone_of(2) == 0
        assert not explicit.crosses(0, 2)

    def test_crossing_cap_forces_the_in_zone_route(self):
        net = self.zoned_net()
        dag = chain_dag(1)
        free = MbbeEmbedder().embed(net, dag, 0, 2, FlowConfig())
        assert free.success and free.cost.link_cost == pytest.approx(2.0)

        capped = MbbeEmbedder().embed(
            net, dag, 0, 2, FlowConfig(), constraints=[self.ZONED]
        )
        assert capped.success
        assert capped.cost.link_cost == pytest.approx(9.0)
        self.ZONED.verify(net, capped.embedding, FlowConfig())  # no raise
        with pytest.raises(ConstraintViolationError, match="cross-zone"):
            self.ZONED.verify(net, free.embedding, FlowConfig())

    def test_multiplier_steers_without_changing_the_objective(self):
        net = self.zoned_net()
        priced = ZonePricingConstraint(
            assignments=((0, 0), (1, 1), (2, 0)), multiplier=5.0
        )
        # Weighted search: 0-1-2 costs (1+4)+(1+4)=10, 0-2 costs 9.
        result = MbbeEmbedder().embed(
            net, chain_dag(1), 0, 2, FlowConfig(), constraints=[priced]
        )
        assert result.success
        # The in-zone link is chosen, and the objective charges its *real*
        # price (9), not the search weight.
        assert result.cost.link_cost == pytest.approx(9.0)

    def test_surcharge_applies_only_to_crossing_links(self):
        g = build_line_graph(3, price=2.0)
        priced = ZonePricingConstraint(assignments=((0, 0), (1, 0), (2, 1)),
                                       multiplier=4.0)
        assert priced.link_surcharge(g.link(0, 1)) == 0.0
        assert priced.link_surcharge(g.link(1, 2)) == pytest.approx(6.0)


# ---------------------------------------------------------------------------
# engine integration: commit, migrate, repair, WAL


def zoned_request(rid, cset, *, seed=0):
    return EmbeddingRequest(
        request_id=rid, dag=chain_dag(1), source=0, dest=2,
        flow=FlowConfig(rate=1.0), seed=seed, constraints=cset,
    )


class TestEngineIntegration:
    def zoned_net(self):
        return _cloud(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 9.0)],
            [(0, 1, 1.0)],
            n_nodes=3,
        )

    CSET = ConstraintSet([TestZones.ZONED])

    def test_submit_honors_constraints_end_to_end(self):
        engine = EmbeddingEngine(self.zoned_net(), "MBBE")
        result = engine.submit(zoned_request(1, self.CSET), rng=0)
        assert result.success
        assert result.cost.link_cost == pytest.approx(9.0)
        assert engine.is_active(1)

    def test_commit_revalidates_against_the_request_rules(self):
        engine = EmbeddingEngine(self.zoned_net(), "MBBE")
        request = zoned_request(1, self.CSET)
        # An unconstrained solve picks the cheap cross-zone route; committing
        # it under the zoned request must be refused, not applied.
        rogue = engine.solve(dataclasses.replace(request, constraints=ConstraintSet.EMPTY))
        assert rogue.success and rogue.cost.link_cost == pytest.approx(2.0)
        decision = engine.commit(request, rogue)
        assert not decision.accepted
        assert decision.code == "constraint_violation"
        assert "cross-zone" in decision.reason
        assert engine.counters["rejected_no_solution"] == 1
        assert not engine.is_active(1)

    def test_migrate_refuses_out_of_bounds_moves(self):
        engine = EmbeddingEngine(self.zoned_net(), "MBBE")
        request = zoned_request(1, self.CSET)
        assert engine.submit(request, rng=0).success
        rogue = engine.solve(dataclasses.replace(request, constraints=ConstraintSet.EMPTY))
        migration = engine.migrate(1, rogue)
        assert not migration.applied
        assert migration.code == "constraint_violation"
        assert engine.is_active(1)  # old embedding untouched

    def test_repair_honors_constraints(self):
        # 0-1-2 plus a detour through node 3; node 3 is in a foreign zone,
        # so a crossing cap of 0 forbids every detour.
        def net():
            return _cloud(
                [(0, 1, 1.0), (1, 2, 1.0), (1, 3, 1.0), (3, 2, 1.0)],
                [(1, 1, 1.0)],
                n_nodes=4,
            )

        cap = ConstraintSet([
            ZonePricingConstraint(
                assignments=((0, 0), (1, 0), (2, 0), (3, 1)),
                multiplier=1.0, max_crossings=0,
            )
        ])
        fault = FaultEvent(time=0, action=FaultAction.FAIL, target=FaultTarget.link(1, 2))

        free_engine = EmbeddingEngine(net(), "MBBE")
        assert free_engine.submit(zoned_request(1, ConstraintSet.EMPTY), rng=0).success
        outcomes = free_engine.apply_fault(fault, auto_seed=True)
        assert [o.action for o in outcomes] != [RepairAction.EVICTED]
        assert free_engine.is_active(1)  # detour 1-3-2 keeps it alive

        capped_engine = EmbeddingEngine(net(), "MBBE")
        assert capped_engine.submit(zoned_request(1, cap), rng=0).success
        outcomes = capped_engine.apply_fault(fault, auto_seed=True)
        assert [o.action for o in outcomes] == [RepairAction.EVICTED]
        assert not capped_engine.is_active(1)  # no lawful detour exists

    def test_wal_replay_restores_constraints(self, tmp_path):
        wal_path = str(tmp_path / "engine.wal")
        engine = EmbeddingEngine(self.zoned_net(), "MBBE")
        engine.attach_wal_file(wal_path)
        assert engine.submit(zoned_request(1, self.CSET), rng=0).success
        engine.detach_wal()

        recovered, _ = EmbeddingEngine.restore(
            self.zoned_net(), "MBBE", None, wal_path=wal_path
        )
        tracked = recovered.repair_engine.tracked(1)
        assert tracked is not None
        assert tracked.constraints == self.CSET
        # The replayed request keeps refusing out-of-bounds migrations.
        rogue = recovered.solve(zoned_request(2, ConstraintSet.EMPTY))
        assert recovered.migrate(1, rogue).code == "constraint_violation"

    def test_wal_payload_roundtrip(self):
        cset = ConstraintSet([DelayBudgetConstraint(budget=8.0)])
        payload = wal_records.release_payload(3)
        assert "constraints" not in payload
        assert wal_records.constraints_from_payload(payload) is ConstraintSet.EMPTY
        assert wal_records.constraints_from_payload(
            {"constraints": cset.specs()}
        ) == cset
        with pytest.raises(WalError, match="malformed constraints"):
            wal_records.constraints_from_payload({"constraints": [{"kind": "nope"}]})


# ---------------------------------------------------------------------------
# wire protocol (v2 constraints field)


class TestWireProtocol:
    CSET = ConstraintSet([
        DelayBudgetConstraint(budget=10.0),
        ZonePricingConstraint(count=2, multiplier=1.5),
    ])

    def submit_message(self, constraints=None):
        return protocol.submit_message(
            msg_id=1, request_id=7, dag=chain_dag(1), source=0, dest=2,
            rate=1.0, seed=5, constraints=constraints,
        )

    def test_reject_codes_include_constraint_violation(self):
        assert "constraint_violation" in protocol.REJECT_CODES

    def test_field_omitted_when_unconstrained(self):
        message = self.submit_message()
        assert "constraints" not in message
        intent = protocol.submit_from_message(message)
        assert intent.constraints is ConstraintSet.EMPTY

    def test_constraints_roundtrip_over_the_wire(self):
        message = self.submit_message(self.CSET)
        assert message["constraints"] == self.CSET.specs()
        intent = protocol.submit_from_message(message)
        assert intent.constraints == self.CSET
        # Pre-serialized spec lists work identically (loadgen's path).
        again = protocol.submit_from_message(self.submit_message(self.CSET.specs()))
        assert again.constraints == self.CSET

    def test_malformed_wire_constraints_are_protocol_errors(self):
        message = self.submit_message(self.CSET)
        message["constraints"] = {"kind": "delay"}
        with pytest.raises(ProtocolError, match="list of specs"):
            protocol.submit_from_message(message)
        message["constraints"] = [{"kind": "teleport"}]
        with pytest.raises(ProtocolError, match="malformed submit constraints"):
            protocol.submit_from_message(message)

    def test_service_end_to_end_under_constraints(self):
        from repro.service import EmbeddingServer, ServiceClient, ServiceConfig

        net = _cloud(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 9.0)],
            [(0, 1, 1.0)],
            n_nodes=3,
        )
        cap = [TestZones.ZONED.spec()]
        # Violated by processing delay alone, which per-path pruning cannot
        # see and hop repricing cannot fix -> the verify-side rejection.
        impossible = [DelayBudgetConstraint(
            budget=0.5, per_hop_delay=0.0, processing_delay=1.0
        ).spec()]

        async def drive():
            async with EmbeddingServer(net, ServiceConfig(workers=0)) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    good = await client.submit(
                        1, chain_dag(1), 0, 2, seed=0, constraints=cap
                    )
                    bad = await client.submit(
                        2, chain_dag(1), 0, 2, seed=0, constraints=impossible
                    )
                    plain = await client.submit(3, chain_dag(1), 0, 2, seed=0)
            return good, bad, plain

        good, bad, plain = asyncio.run(drive())
        assert good.accepted
        assert good.total_cost > plain.total_cost or not plain.accepted
        assert not bad.accepted
        assert "constraint" in (bad.reason or "")


# ---------------------------------------------------------------------------
# properties


MODERATE = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

nets = st.builds(
    lambda seed, size: generate_network(
        NetworkConfig(
            size=size, connectivity=4.0, n_vnf_types=5, deploy_ratio=0.7,
            vnf_capacity=100.0, link_capacity=100.0,
        ),
        rng=seed,
    ),
    seed=st.integers(0, 5_000),
    size=st.integers(10, 30),
)

constraint_sets = st.lists(
    st.one_of(
        st.builds(
            DelayBudgetConstraint,
            budget=st.floats(5.0, 60.0),
            per_hop_delay=st.floats(0.1, 1.0),
            initial_lambda=st.floats(0.5, 4.0),
        ),
        st.builds(
            AntiAffinityConstraint,
            spread=st.sets(st.integers(0, 4), min_size=1, max_size=3).map(
                lambda s: tuple(sorted(s))
            ),
        ),
        st.builds(
            ZonePricingConstraint,
            count=st.integers(2, 4),
            multiplier=st.floats(1.0, 3.0),
            max_crossings=st.one_of(st.none(), st.integers(2, 8)),
        ),
    ),
    min_size=0,
    max_size=2,
).map(ConstraintSet)


class TestProperties:
    @given(net=nets, cset=constraint_sets, seed=st.integers(0, 1000))
    @MODERATE
    def test_accepted_embeddings_satisfy_every_registered_constraint(
        self, net, cset, seed
    ):
        dag = generate_dag_sfc(SfcConfig(size=3), 5, rng=seed)
        result = MbbeEmbedder().embed(
            net, dag, 0, net.num_nodes - 1, FlowConfig(), rng=seed,
            constraints=cset,
        )
        if result.success:
            assert cset.check(net, result.embedding, FlowConfig()) is None
        else:
            assert result.embedding is None

    @given(net=nets, seed=st.integers(0, 1000))
    @MODERATE
    def test_empty_set_is_decision_identical_to_the_historical_path(
        self, net, seed
    ):
        dag = generate_dag_sfc(SfcConfig(size=4), 5, rng=seed)
        flow = FlowConfig()
        baseline = MbbeEmbedder().embed(net, dag, 0, net.num_nodes - 1, flow, rng=seed)
        for empty in (ConstraintSet.EMPTY, [], None):
            replay = MbbeEmbedder().embed(
                net, dag, 0, net.num_nodes - 1, flow, rng=seed, constraints=empty
            )
            assert replay.success == baseline.success
            if baseline.success:
                assert replay.embedding.placements == baseline.embedding.placements
                assert replay.embedding.inter_paths == baseline.embedding.inter_paths
                assert replay.embedding.inner_paths == baseline.embedding.inner_paths
                assert replay.total_cost == baseline.total_cost


class TestEmptySetGridEquivalence:
    """The empty registry must be bit-identical across the solver grid."""

    @pytest.mark.parametrize("solver_name", ["BBE", "MBBE", "MBBE-S"])
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_solver_grid(self, solver_name, seed):
        net = generate_network(
            NetworkConfig(size=40, connectivity=4.0, n_vnf_types=6,
                          deploy_ratio=0.6, vnf_capacity=100.0,
                          link_capacity=100.0),
            rng=seed,
        )
        dag = generate_dag_sfc(SfcConfig(size=4), 6, rng=seed)
        solver = make_solver(solver_name)
        a = solver.embed(net, dag, 0, 39, FlowConfig(), rng=seed)
        b = solver.embed(net, dag, 0, 39, FlowConfig(), rng=seed,
                         constraints=ConstraintSet.EMPTY)
        assert a.success == b.success
        if a.success:
            assert a.embedding.placements == b.embedding.placements
            assert a.embedding.inter_paths == b.embedding.inter_paths
            assert a.embedding.inner_paths == b.embedding.inner_paths
            assert a.total_cost == b.total_cost

    def test_bbe_accepts_constraints_too(self):
        net = _cloud(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 9.0)],
            [(0, 1, 1.0)],
            n_nodes=3,
        )
        result = BbeEmbedder().embed(
            net, chain_dag(1), 0, 2, FlowConfig(), constraints=[TestZones.ZONED]
        )
        assert result.success
        assert result.cost.link_cost == pytest.approx(9.0)
