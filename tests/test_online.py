"""Tests for the online-arrivals simulator and residual-view mechanics."""

import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.exceptions import ConfigurationError
from repro.network.cloud import CloudNetwork
from repro.network.generator import generate_network
from repro.network.state import ResidualState
from repro.sfc.builder import DagSfcBuilder
from repro.sfc.generator import generate_dag_sfc
from repro.sim.online import OnlineSimulator, SfcRequest
from repro.solvers import MbbeEmbedder, MinvEmbedder

from .conftest import build_line_graph


class TestResidualView:
    def test_to_network_reflects_usage(self):
        g = build_line_graph(3, price=1.0, capacity=2.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=5.0, capacity=3.0)
        st = ResidualState(net)
        st.reserve_link(0, 1, 1.5)
        st.reserve_vnf(1, 1, 1.0)
        view = st.to_network()
        assert view.graph.link(0, 1).capacity == pytest.approx(0.5)
        assert view.graph.link(1, 2).capacity == pytest.approx(2.0)
        assert view.instance(1, 1).capacity == pytest.approx(2.0)
        assert view.instance(1, 1).price == pytest.approx(5.0)

    def test_saturated_resources_vanish(self):
        g = build_line_graph(3, price=1.0, capacity=2.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=5.0, capacity=1.0)
        st = ResidualState(net)
        st.reserve_link(0, 1, 2.0)
        st.reserve_vnf(1, 1, 1.0)
        view = st.to_network()
        assert not view.graph.has_link(0, 1)
        assert not view.has_vnf(1, 1)
        assert view.graph.has_node(0)  # nodes remain

    def test_release_roundtrip(self):
        g = build_line_graph(3, price=1.0, capacity=2.0)
        net = CloudNetwork(g)
        st = ResidualState(net)
        st.reserve_link(0, 1, 1.5)
        st.release_link(0, 1, 1.5)
        assert st.link_used(0, 1) == 0.0

    def test_over_release_raises(self):
        g = build_line_graph(3, price=1.0, capacity=2.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=5.0, capacity=1.0)
        st = ResidualState(net)
        from repro.exceptions import CapacityError

        with pytest.raises(CapacityError):
            st.release_link(0, 1, 0.5)
        with pytest.raises(CapacityError):
            st.release_vnf(1, 1, 0.5)


@pytest.fixture
def online_net():
    cfg = NetworkConfig(
        size=40, connectivity=4.0, n_vnf_types=6, deploy_ratio=0.5,
        vnf_capacity=2.0, link_capacity=3.0,
    )
    return generate_network(cfg, rng=17)


def request(rid, *, size=3, seed=0, rate=1.0):
    dag = generate_dag_sfc(SfcConfig(size=size), n_vnf_types=6, rng=seed)
    return SfcRequest(rid, dag, 0, 39, FlowConfig(rate=rate))


class TestOnlineSimulator:
    def test_accept_and_stats(self, online_net):
        sim = OnlineSimulator(online_net, MbbeEmbedder())
        r = sim.submit(request(1, seed=1))
        assert r.success
        stats = sim.stats()
        assert stats.arrivals == 1 and stats.accepted == 1
        assert stats.acceptance_ratio == 1.0
        assert stats.active == 1
        assert list(sim.active_requests()) == [1]

    def test_resources_actually_reserved(self, online_net):
        sim = OnlineSimulator(online_net, MbbeEmbedder())
        r = sim.submit(request(1, seed=1))
        used_links = dict(sim.state.used_links())
        assert used_links  # some bandwidth held
        for key, count in r.cost.alpha_link.items():
            assert used_links[key] == pytest.approx(count * 1.0)

    def test_release_restores_capacity(self, online_net):
        sim = OnlineSimulator(online_net, MbbeEmbedder())
        sim.submit(request(1, seed=1))
        sim.release(1)
        assert dict(sim.state.used_links()) == {}
        assert dict(sim.state.used_vnfs()) == {}
        assert sim.stats().active == 0

    def test_duplicate_id_rejected(self, online_net):
        sim = OnlineSimulator(online_net, MbbeEmbedder())
        sim.submit(request(1, seed=1))
        with pytest.raises(ConfigurationError):
            sim.submit(request(1, seed=2))

    def test_unknown_release_rejected(self, online_net):
        sim = OnlineSimulator(online_net, MbbeEmbedder())
        with pytest.raises(ConfigurationError):
            sim.release(99)

    def test_failed_request_holds_nothing(self, online_net):
        sim = OnlineSimulator(online_net, MbbeEmbedder())
        bad = SfcRequest(5, DagSfcBuilder().single(1).build(), 0, 999, FlowConfig())
        r = sim.submit(bad)
        assert not r.success
        assert sim.stats().arrivals == 1 and sim.stats().accepted == 0
        assert dict(sim.state.used_links()) == {}

    def test_saturation_then_departure_frees_capacity(self):
        # One instance of f(1), capacity for exactly one flow.
        g = build_line_graph(3, price=1.0, capacity=10.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=5.0, capacity=1.0)
        dag = DagSfcBuilder().single(1).build()
        sim = OnlineSimulator(net, MinvEmbedder())
        a = sim.submit(SfcRequest(1, dag, 0, 2, FlowConfig(rate=1.0)))
        assert a.success
        b = sim.submit(SfcRequest(2, dag, 0, 2, FlowConfig(rate=1.0)))
        assert not b.success  # instance saturated
        sim.release(1)
        c = sim.submit(SfcRequest(3, dag, 0, 2, FlowConfig(rate=1.0)))
        assert c.success  # capacity came back
        assert sim.stats().acceptance_ratio == pytest.approx(2 / 3)

    def test_costs_rise_as_cheap_capacity_fills(self, online_net):
        """Later arrivals see a poorer residual network: cost is monotone-ish."""
        sim = OnlineSimulator(online_net, MbbeEmbedder())
        costs = []
        for i in range(4):
            r = sim.submit(request(i, seed=100 + i, size=3))
            if r.success:
                costs.append(r.total_cost)
        assert len(costs) >= 2
        # Not strictly monotone (different SFCs), but the last accepted
        # request must not be cheaper than the cheapest first one by much.
        assert max(costs) >= min(costs)


class TestMbbeSteiner:
    def test_never_worse_than_mbbe_on_fixed_instances(self):
        from repro.solvers import MbbeSteinerEmbedder

        cfg = NetworkConfig(size=50, connectivity=4.0, n_vnf_types=6, deploy_ratio=0.15)
        net = generate_network(cfg, rng=19)
        for seed in range(4):
            dag = generate_dag_sfc(SfcConfig(size=5), n_vnf_types=6, rng=seed)
            m = MbbeEmbedder().embed(net, dag, 0, 49, FlowConfig())
            s = MbbeSteinerEmbedder().embed(net, dag, 0, 49, FlowConfig())
            assert m.success and s.success
            assert s.total_cost <= m.total_cost + 1e-6

    def test_registered(self):
        from repro.solvers import available_solvers, make_solver

        assert "MBBE-S" in available_solvers()
        assert make_solver("mbbe-s").name == "MBBE-S"
