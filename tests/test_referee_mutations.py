"""Mutation testing of the referee: every tampered embedding must be caught.

The shared referee (`verify_embedding`) is the last line of defence against
solver bugs; these tests mutate *valid* solver outputs in every structural
way we can think of and assert the referee rejects each mutant. If a new
mutation class survives, the referee has a hole.
"""

import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.embedding.feasibility import verify_embedding
from repro.embedding.mapping import Embedding
from repro.exceptions import EmbeddingError, ReproError
from repro.network.generator import generate_network
from repro.network.paths import Path
from repro.sfc.generator import generate_dag_sfc
from repro.solvers import MbbeEmbedder
from repro.types import Position


@pytest.fixture(scope="module")
def valid():
    net = generate_network(
        NetworkConfig(size=30, connectivity=4.0, n_vnf_types=6), rng=42
    )
    dag = generate_dag_sfc(SfcConfig(size=5), n_vnf_types=6, rng=43)
    r = MbbeEmbedder().embed(net, dag, 0, 29, FlowConfig())
    assert r.success
    return net, r.embedding


def remake(emb: Embedding, **kw) -> Embedding:
    fields = dict(
        dag=emb.dag,
        source=emb.source,
        dest=emb.dest,
        placements=dict(emb.placements),
        inter_paths=dict(emb.inter_paths),
        inner_paths=dict(emb.inner_paths),
    )
    fields.update(kw)
    return Embedding(**fields)


def assert_rejected(net, emb):
    with pytest.raises(ReproError):
        verify_embedding(net, emb, FlowConfig())


class TestPlacementMutations:
    def test_original_is_valid(self, valid):
        net, emb = valid
        verify_embedding(net, emb, FlowConfig())

    def test_drop_each_placement(self, valid):
        net, emb = valid
        for pos in emb.placements:
            placements = dict(emb.placements)
            del placements[pos]
            assert_rejected(net, remake(emb, placements=placements))

    def test_move_each_placement_to_nonhosting_node(self, valid):
        net, emb = valid
        s = emb.stretched()
        for pos, node in emb.placements.items():
            vnf = s.vnf_at(pos)
            bad = next(
                (n for n in sorted(net.nodes()) if not net.has_vnf(n, vnf)), None
            )
            if bad is None:
                continue
            placements = dict(emb.placements)
            placements[pos] = bad
            assert_rejected(net, remake(emb, placements=placements))

    def test_extra_phantom_placement(self, valid):
        net, emb = valid
        placements = dict(emb.placements)
        placements[Position(99, 1)] = 0
        assert_rejected(net, remake(emb, placements=placements))


class TestPathMutations:
    def test_drop_each_inter_path(self, valid):
        net, emb = valid
        for pos in emb.inter_paths:
            inter = dict(emb.inter_paths)
            del inter[pos]
            assert_rejected(net, remake(emb, inter_paths=inter))

    def test_drop_each_inner_path(self, valid):
        net, emb = valid
        for pos in emb.inner_paths:
            inner = dict(emb.inner_paths)
            del inner[pos]
            assert_rejected(net, remake(emb, inner_paths=inner))

    def test_truncate_each_nontrivial_inter_path(self, valid):
        net, emb = valid
        for pos, path in emb.inter_paths.items():
            if path.length < 1:
                continue
            inter = dict(emb.inter_paths)
            inter[pos] = Path(path.nodes[:-1])
            # Endpoint mismatch (or, if length was 1, a trivial path that
            # no longer reaches the placement).
            assert_rejected(net, remake(emb, inter_paths=inter))

    def test_reverse_each_nontrivial_path(self, valid):
        net, emb = valid
        mutated = False
        for pos, path in emb.inter_paths.items():
            if path.length < 1 or path.source == path.target:
                continue
            inter = dict(emb.inter_paths)
            inter[pos] = path.reversed()
            assert_rejected(net, remake(emb, inter_paths=inter))
            mutated = True
        assert mutated

    def test_path_over_phantom_link(self, valid):
        net, emb = valid
        # Find two non-adjacent nodes and fabricate a path over them.
        nodes = sorted(net.nodes())
        a, b = next(
            (x, y)
            for x in nodes
            for y in nodes
            if x < y and not net.graph.has_link(x, y)
        )
        pos = next(iter(emb.inter_paths))
        src = emb.inter_paths[pos].source
        dst = emb.inter_paths[pos].target
        if src == dst:
            pytest.skip("first inter path is trivial in this instance")
        inter = dict(emb.inter_paths)
        inter[pos] = Path((src, a, b, dst)) if src not in (a, b) else Path((src, b, dst))
        assert_rejected(net, remake(emb, inter_paths=inter))

    def test_stray_extra_inner_path(self, valid):
        net, emb = valid
        inner = dict(emb.inner_paths)
        inner[Position(50, 1)] = Path.trivial(0)
        assert_rejected(net, remake(emb, inner_paths=inner))


class TestEndpointMutations:
    def test_wrong_source(self, valid):
        net, emb = valid
        if emb.source == 5:
            pytest.skip("instance uses node 5 as source")
        assert_rejected(net, remake(emb, source=5))

    def test_wrong_dest(self, valid):
        net, emb = valid
        other = next(n for n in sorted(net.nodes()) if n != emb.dest)
        assert_rejected(net, remake(emb, dest=other))

    def test_nonexistent_endpoints(self, valid):
        net, emb = valid
        assert_rejected(net, remake(emb, source=10_000))
        assert_rejected(net, remake(emb, dest=10_000))
