"""Tests for table/CSV rendering and the ASCII chart."""

import csv
import io
import math

from repro.sim.ascii_chart import line_chart
from repro.sim.metrics import PointSummary
from repro.sim.report import (
    markdown_table,
    series_from_summaries,
    summaries_to_csv,
    summary_table,
)


def ps(x, algo, mean, *, n=5, ok=5):
    return PointSummary(
        x=x, algorithm=algo, n_trials=n, n_success=ok,
        mean_cost=mean, std_cost=1.0, ci95_cost=0.5,
        mean_vnf_cost=mean * 0.7, mean_link_cost=mean * 0.3, mean_runtime=0.01,
    )


SUMMARIES = [
    ps(1.0, "RANV", 100.0),
    ps(1.0, "MBBE", 70.0),
    ps(2.0, "RANV", 150.0, ok=4),
    ps(2.0, "MBBE", 90.0),
]


class TestSummaryTable:
    def test_columns_ordered_paper_style(self):
        table = summary_table(SUMMARIES, x_label="SFC size")
        header = table.splitlines()[0]
        assert header.index("RANV") < header.index("MBBE")

    def test_partial_success_annotated(self):
        table = summary_table(SUMMARIES)
        assert "(4/5)" in table

    def test_missing_cell_dash(self):
        table = summary_table([ps(1.0, "A", 10.0), ps(2.0, "B", 20.0)])
        assert "—" in table

    def test_all_failed_cell_dash(self):
        table = summary_table([ps(1.0, "A", math.nan, ok=0)])
        assert "—" in table


class TestMarkdown:
    def test_markdown_structure(self):
        md = markdown_table(SUMMARIES, x_label="x")
        lines = md.splitlines()
        assert lines[0].startswith("| x |")
        assert lines[1].startswith("|---")
        assert len(lines) == 2 + 2  # two x rows


class TestCsv:
    def test_roundtrip(self):
        text = summaries_to_csv(SUMMARIES)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 4
        assert rows[0]["algorithm"] in {"RANV", "MBBE"}
        assert float(rows[0]["mean_cost"]) > 0


class TestSeries:
    def test_series_skip_nan(self):
        s = series_from_summaries(SUMMARIES + [ps(3.0, "MBBE", math.nan, ok=0)])
        assert [x for x, _ in s["MBBE"]] == [1.0, 2.0]


class TestAsciiChart:
    def test_renders_all_series(self):
        chart = line_chart(
            {"MBBE": [(1, 70), (2, 90)], "RANV": [(1, 100), (2, 150)]},
            title="demo", x_label="size",
        )
        assert "demo" in chart
        assert "o=MBBE" in chart and "*=RANV" in chart
        assert "size" in chart

    def test_empty(self):
        assert line_chart({}) == "(no data)"

    def test_single_point(self):
        chart = line_chart({"A": [(1.0, 5.0)]})
        assert "o=A" in chart

    def test_nan_points_ignored(self):
        chart = line_chart({"A": [(1.0, 5.0), (2.0, math.nan)]})
        assert "o=A" in chart
