"""Unit tests for the network graph substrate."""

import pytest

from repro.exceptions import ConfigurationError, LinkNotFoundError, NodeNotFoundError
from repro.network.graph import Graph, Link

from .conftest import build_line_graph, build_square_graph


class TestLink:
    def test_rejects_self_loop(self):
        with pytest.raises(ConfigurationError):
            Link(u=1, v=1, price=1.0, capacity=1.0)

    def test_rejects_negative_price(self):
        with pytest.raises(ConfigurationError):
            Link(u=0, v=1, price=-1.0, capacity=1.0)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            Link(u=0, v=1, price=1.0, capacity=0.0)

    def test_key_canonical(self):
        link = Link(u=2, v=7, price=1.0, capacity=1.0)
        assert link.key == (2, 7)

    def test_other_endpoint(self):
        link = Link(u=2, v=7, price=1.0, capacity=1.0)
        assert link.other(2) == 7
        assert link.other(7) == 2
        with pytest.raises(NodeNotFoundError):
            link.other(3)


class TestGraphConstruction:
    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(0)
        g.add_node(0)
        assert g.num_nodes == 1

    def test_negative_node_rejected(self):
        g = Graph()
        with pytest.raises(ConfigurationError):
            g.add_node(-1)

    def test_add_link_creates_endpoints(self):
        g = Graph()
        g.add_link(3, 5, price=1.0, capacity=1.0)
        assert g.has_node(3) and g.has_node(5)
        assert g.num_links == 1

    def test_duplicate_link_rejected_either_direction(self):
        g = Graph()
        g.add_link(0, 1, price=1.0, capacity=1.0)
        with pytest.raises(ConfigurationError):
            g.add_link(1, 0, price=2.0, capacity=1.0)

    def test_remove_link(self):
        g = build_square_graph()
        g.remove_link(0, 1)
        assert not g.has_link(0, 1)
        assert g.num_links == 4
        with pytest.raises(LinkNotFoundError):
            g.remove_link(0, 1)


class TestGraphQueries:
    def test_link_symmetric_lookup(self):
        g = build_line_graph(3)
        assert g.link(0, 1) is g.link(1, 0)

    def test_missing_link_raises(self):
        g = build_line_graph(3)
        with pytest.raises(LinkNotFoundError):
            g.link(0, 2)

    def test_neighbors(self):
        g = build_line_graph(3)
        assert set(g.neighbors(1)) == {0, 2}
        with pytest.raises(NodeNotFoundError):
            g.neighbors(99)

    def test_degree_and_average(self):
        g = build_square_graph()
        assert g.degree(0) == 3  # two ring links + diagonal
        assert g.average_degree() == pytest.approx(2 * 5 / 4)

    def test_incident_links(self):
        g = build_line_graph(3)
        assert {l.key for l in g.incident(1)} == {(0, 1), (1, 2)}

    def test_links_iterates_each_once(self):
        g = build_square_graph()
        keys = [l.key for l in g.links()]
        assert len(keys) == len(set(keys)) == 5


class TestGraphAlgorithms:
    def test_connected_line(self):
        assert build_line_graph(10).is_connected()

    def test_disconnected_after_cut(self):
        g = build_line_graph(4)
        g.remove_link(1, 2)
        assert not g.is_connected()

    def test_empty_graph_connected(self):
        assert Graph().is_connected()

    def test_isolated_node_disconnects(self):
        g = build_line_graph(3)
        g.add_node(50)
        assert not g.is_connected()

    def test_copy_is_independent(self):
        g = build_line_graph(3)
        h = g.copy()
        h.remove_link(0, 1)
        assert g.has_link(0, 1)
        assert not h.has_link(0, 1)

    def test_total_link_price(self):
        g = build_square_graph(price=1.0)
        assert g.total_link_price() == pytest.approx(4 * 1.0 + 2.0)
