"""Tests for chains, DAG-SFCs, the builder, stretching and the generator."""

import pytest

from repro.config import SfcConfig
from repro.exceptions import ConfigurationError, InvalidChainError, InvalidDagError
from repro.sfc.builder import DagSfcBuilder
from repro.sfc.chain import SequentialSfc
from repro.sfc.dag import DagSfc, Layer
from repro.sfc.generator import generate_dag_sfc, layer_sizes_for
from repro.sfc.stretch import MetaPathKind, StretchedSfc
from repro.types import DUMMY_VNF, MERGER_VNF, Position


class TestSequentialSfc:
    def test_basic(self):
        c = SequentialSfc([1, 2, 3])
        assert c.size == 3
        assert list(c) == [1, 2, 3]

    def test_empty_rejected(self):
        with pytest.raises(InvalidChainError):
            SequentialSfc([])

    def test_special_vnfs_rejected(self):
        with pytest.raises(InvalidChainError):
            SequentialSfc([1, DUMMY_VNF])
        with pytest.raises(InvalidChainError):
            SequentialSfc([MERGER_VNF])

    def test_equality(self):
        assert SequentialSfc([1, 2]) == SequentialSfc([1, 2])
        assert SequentialSfc([1, 2]) != SequentialSfc([2, 1])


class TestLayer:
    def test_single_layer_no_merger(self):
        l = Layer((4,))
        assert not l.has_merger
        assert l.width == 1
        assert l.required_types == (4,)
        assert l.vnf_at(1) == 4

    def test_parallel_layer_has_merger(self):
        l = Layer((2, 3, 4))
        assert l.has_merger
        assert l.phi == 3
        assert l.width == 4
        assert l.required_types == (2, 3, 4, MERGER_VNF)
        assert l.vnf_at(4) == MERGER_VNF

    def test_bad_gamma(self):
        l = Layer((2, 3))
        with pytest.raises(InvalidDagError):
            l.vnf_at(4)
        with pytest.raises(InvalidDagError):
            l.vnf_at(0)

    def test_empty_layer_rejected(self):
        with pytest.raises(InvalidDagError):
            Layer(())

    def test_duplicate_members_rejected(self):
        with pytest.raises(InvalidDagError):
            Layer((2, 2))

    def test_special_members_rejected(self):
        with pytest.raises(InvalidDagError):
            Layer((1, MERGER_VNF))


class TestDagSfc:
    def test_fig2_structure(self, fig2_dag):
        assert fig2_dag.omega == 3
        assert fig2_dag.size == 7
        assert fig2_dag.num_mergers == 2
        assert fig2_dag.num_positions == 9

    def test_positions_enumeration(self, fig2_dag):
        pos = list(fig2_dag.positions())
        assert pos[0] == Position(1, 1)
        assert Position(2, 5) in pos  # layer-2 merger
        assert len(pos) == 9

    def test_vnf_at(self, fig2_dag):
        assert fig2_dag.vnf_at(Position(1, 1)) == 1
        assert fig2_dag.vnf_at(Position(2, 3)) == 4
        assert fig2_dag.vnf_at(Position(2, 5)) == MERGER_VNF

    def test_required_types(self, fig2_dag):
        assert fig2_dag.required_types() == frozenset({1, 2, 3, 4, 5, 6, 7, MERGER_VNF})

    def test_vnf_multiset_counts_mergers(self, fig2_dag):
        counts = fig2_dag.vnf_multiset()
        assert counts[MERGER_VNF] == 2
        assert counts[1] == 1

    def test_layer_accessor_bounds(self, fig2_dag):
        with pytest.raises(InvalidDagError):
            fig2_dag.layer(0)
        with pytest.raises(InvalidDagError):
            fig2_dag.layer(4)

    def test_accepts_raw_sequences(self):
        dag = DagSfc([(1,), (2, 3)])
        assert dag.omega == 2
        assert dag.layer(2).has_merger

    def test_empty_rejected(self):
        with pytest.raises(InvalidDagError):
            DagSfc([])


class TestBuilder:
    def test_fluent(self):
        dag = DagSfcBuilder().single(1).parallel(2, 3).build()
        assert dag.omega == 2

    def test_parallel_needs_two(self):
        with pytest.raises(InvalidDagError):
            DagSfcBuilder().parallel(1)


class TestStretchedSfc:
    def test_dummy_positions(self, fig2_dag):
        s = StretchedSfc(fig2_dag)
        assert s.vnf_at(s.source_position) == DUMMY_VNF
        assert s.vnf_at(s.dest_position) == DUMMY_VNF
        assert s.dest_position == Position(4, 1)

    def test_end_positions(self, fig2_dag):
        s = StretchedSfc(fig2_dag)
        assert s.end_position(0) == Position(0, 1)
        assert s.end_position(1) == Position(1, 1)  # single VNF
        assert s.end_position(2) == Position(2, 5)  # merger
        assert s.end_position(4) == s.dest_position

    def test_inter_layer_metapaths(self, fig2_dag):
        s = StretchedSfc(fig2_dag)
        l2 = s.inter_layer_metapaths(2)
        assert len(l2) == 4  # to each of f2..f5, NOT the merger
        assert all(m.src == Position(1, 1) for m in l2)
        tail = s.inter_layer_metapaths(4)
        assert len(tail) == 1
        assert tail[0].dst == s.dest_position

    def test_inner_layer_metapaths(self, fig2_dag):
        s = StretchedSfc(fig2_dag)
        assert s.inner_layer_metapaths(1) == []
        l2 = s.inner_layer_metapaths(2)
        assert len(l2) == 4
        assert all(m.dst == Position(2, 5) for m in l2)

    def test_metapath_counts_fig2(self, fig2_dag):
        s = StretchedSfc(fig2_dag)
        # P1: src->f1 (1) + f1->{f2..f5} (4) + m2->{f6,f7} (2) + m3->dst (1) = 8
        assert len(s.p1()) == 8
        # P2: 4 (layer 2) + 2 (layer 3) = 6
        assert len(s.p2()) == 6
        assert len(s.all_metapaths()) == 14

    def test_metapath_kinds(self, fig2_dag):
        s = StretchedSfc(fig2_dag)
        for m in s.p1():
            assert m.kind is MetaPathKind.INTER_LAYER
        for m in s.p2():
            assert m.kind is MetaPathKind.INNER_LAYER


class TestLayerSizes:
    @pytest.mark.parametrize(
        "size,expected",
        [(1, (1,)), (2, (2,)), (3, (3,)), (4, (3, 1)), (5, (3, 2)), (9, (3, 3, 3))],
    )
    def test_paper_rule(self, size, expected):
        assert layer_sizes_for(size) == expected

    def test_custom_max_parallel(self):
        assert layer_sizes_for(5, 2) == (2, 2, 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            layer_sizes_for(0)


class TestSfcGenerator:
    def test_structure_matches_rule(self):
        dag = generate_dag_sfc(SfcConfig(size=5), n_vnf_types=12, rng=1)
        assert tuple(l.phi for l in dag.layers) == (3, 2)
        assert dag.size == 5

    def test_distinct_vnfs(self):
        dag = generate_dag_sfc(SfcConfig(size=9), n_vnf_types=12, rng=2)
        all_vnfs = [v for l in dag.layers for v in l.parallel]
        assert len(set(all_vnfs)) == 9

    def test_distinct_requires_enough_types(self):
        with pytest.raises(ConfigurationError):
            generate_dag_sfc(SfcConfig(size=9), n_vnf_types=5, rng=3)

    def test_non_distinct_mode(self):
        cfg = SfcConfig(size=9, distinct_vnfs=False)
        dag = generate_dag_sfc(cfg, n_vnf_types=4, rng=4)
        assert dag.size == 9
        for layer in dag.layers:  # no duplicates within one set
            assert len(set(layer.parallel)) == layer.phi

    def test_deterministic(self):
        a = generate_dag_sfc(SfcConfig(size=6), n_vnf_types=10, rng=42)
        b = generate_dag_sfc(SfcConfig(size=6), n_vnf_types=10, rng=42)
        assert a == b

    def test_same_structure_different_vnfs(self):
        a = generate_dag_sfc(SfcConfig(size=6), n_vnf_types=10, rng=1)
        b = generate_dag_sfc(SfcConfig(size=6), n_vnf_types=10, rng=2)
        assert tuple(l.phi for l in a.layers) == tuple(l.phi for l in b.layers)
        assert a != b
