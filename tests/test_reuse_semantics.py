"""Reuse-accounting semantics of eq. 7–10, exercised edge by edge.

These are the behaviours a naive implementation gets wrong: the same VNF
instance rented by two SFC positions, the same link charged by different
layers, multicast sharing within a layer but not across layers, and
inner-layer paths never sharing.
"""

import pytest

from repro.config import FlowConfig
from repro.embedding.costing import charged_link_uses, compute_cost, vnf_uses
from repro.embedding.feasibility import check_capacity
from repro.embedding.mapping import Embedding
from repro.exceptions import InfeasibleEmbeddingError
from repro.network.cloud import CloudNetwork
from repro.network.paths import Path
from repro.sfc.builder import DagSfcBuilder
from repro.types import MERGER_VNF, Position

from .conftest import build_line_graph


@pytest.fixture
def reuse_cloud():
    """Line 0-1-2 with f(1) only on node 1 (capacity 2 uses)."""
    g = build_line_graph(3, price=1.0, capacity=10.0)
    net = CloudNetwork(g)
    net.deploy(1, 1, price=10.0, capacity=2.0)
    return net


class TestVnfReuseAcrossLayers:
    """eq. 7: alpha_{v,i} counts positions; rental paid per use."""

    def _embedding(self, net):
        dag = DagSfcBuilder().single(1).single(1).build()  # f(1) twice
        return Embedding(
            dag=dag, source=0, dest=2,
            placements={Position(1, 1): 1, Position(2, 1): 1},
            inter_paths={
                Position(1, 1): Path((0, 1)),
                Position(2, 1): Path.trivial(1),
                Position(3, 1): Path((1, 2)),
            },
            inner_paths={},
        )

    def test_alpha_counts_both_uses(self, reuse_cloud):
        emb = self._embedding(reuse_cloud)
        assert vnf_uses(emb) == {(1, 1): 2}

    def test_rental_charged_twice(self, reuse_cloud):
        emb = self._embedding(reuse_cloud)
        cost = compute_cost(reuse_cloud, emb, FlowConfig())
        assert cost.vnf_cost == pytest.approx(20.0)

    def test_capacity_consumed_per_use(self, reuse_cloud):
        emb = self._embedding(reuse_cloud)
        check_capacity(reuse_cloud, emb, FlowConfig(rate=1.0))  # 2*1 <= 2
        with pytest.raises(InfeasibleEmbeddingError):
            check_capacity(reuse_cloud, emb, FlowConfig(rate=1.1))  # 2.2 > 2


class TestLinkReuseAcrossLayers:
    """eq. 9's sum over l: the same link in two layers' multicasts pays twice."""

    def test_two_layers_same_link(self):
        g = build_line_graph(2, price=3.0, capacity=10.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=1.0, capacity=10.0)
        net.deploy(0, 2, price=1.0, capacity=10.0)
        dag = DagSfcBuilder().single(1).single(2).build()
        emb = Embedding(
            dag=dag, source=0, dest=0,
            placements={Position(1, 1): 1, Position(2, 1): 0},
            inter_paths={
                Position(1, 1): Path((0, 1)),  # layer 1 uses 0-1
                Position(2, 1): Path((1, 0)),  # layer 2 uses 0-1 again
                Position(3, 1): Path.trivial(0),
            },
            inner_paths={},
        )
        alpha = charged_link_uses(emb)
        assert alpha[(0, 1)] == 2  # no cross-layer sharing
        assert compute_cost(net, emb, FlowConfig()).link_cost == pytest.approx(6.0)


class TestMulticastScope:
    """eq. 9's min{…,1}: sharing within one layer's inter paths only."""

    @pytest.fixture
    def multi_cloud(self):
        g = build_line_graph(4, price=1.0, capacity=10.0)
        net = CloudNetwork(g)
        for t in (1, 2):
            net.deploy(2, t, price=1.0, capacity=10.0)
        net.deploy(3, MERGER_VNF, price=1.0, capacity=10.0)
        return net

    def test_within_layer_shared(self, multi_cloud):
        dag = DagSfcBuilder().parallel(1, 2).build()
        emb = Embedding(
            dag=dag, source=0, dest=0,
            placements={Position(1, 1): 2, Position(1, 2): 2, Position(1, 3): 3},
            inter_paths={
                Position(1, 1): Path((0, 1, 2)),
                Position(1, 2): Path((0, 1, 2)),  # identical path, shared
                Position(2, 1): Path((3, 2, 1, 0)),
            },
            inner_paths={
                Position(1, 1): Path((2, 3)),
                Position(1, 2): Path((2, 3)),  # same nodes but inner: paid twice
            },
        )
        alpha = charged_link_uses(emb)
        # 0-1: inter layer1 (1) + tail (1) = 2; 1-2: same = 2;
        # 2-3: inner twice + tail once = 3.
        assert alpha[(0, 1)] == 2
        assert alpha[(1, 2)] == 2
        assert alpha[(2, 3)] == 3

    def test_inner_paths_never_share(self, multi_cloud):
        """Two inner paths over one link consume two capacity units."""
        dag = DagSfcBuilder().parallel(1, 2).build()
        emb = Embedding(
            dag=dag, source=2, dest=2,
            placements={Position(1, 1): 2, Position(1, 2): 2, Position(1, 3): 3},
            inter_paths={
                Position(1, 1): Path.trivial(2),
                Position(1, 2): Path.trivial(2),
                Position(2, 1): Path((3, 2)),
            },
            inner_paths={
                Position(1, 1): Path((2, 3)),
                Position(1, 2): Path((2, 3)),
            },
        )
        # Link 2-3 carries: 2 inner + 1 tail = 3 uses.
        check_capacity(multi_cloud, emb, FlowConfig(rate=3.0))  # 9 <= 10
        with pytest.raises(InfeasibleEmbeddingError):
            check_capacity(multi_cloud, emb, FlowConfig(rate=3.5))


class TestSolversHonourReuse:
    """End-to-end: solvers exploit or respect reuse correctly."""

    def test_exact_dp_handles_duplicate_types(self):
        from repro.solvers import ExactEmbedder, IlpEmbedder

        g = build_line_graph(5, price=1.0, capacity=10.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=10.0, capacity=10.0)
        net.deploy(3, 1, price=50.0, capacity=10.0)
        net.deploy(2, 2, price=10.0, capacity=10.0)
        dag = DagSfcBuilder().single(1).single(2).single(1).build()
        exact = ExactEmbedder().embed(net, dag, 0, 4, FlowConfig())
        ilp = IlpEmbedder().embed(net, dag, 0, 4, FlowConfig())
        assert exact.success and ilp.success
        assert exact.total_cost == pytest.approx(ilp.total_cost, rel=1e-6)
        # Both f(1) positions should land on the cheap node 1 (reuse).
        assert exact.cost.alpha_vnf.get((1, 1)) == 2

    def test_mbbe_respects_instance_capacity_on_reuse(self):
        from repro.solvers import MbbeEmbedder

        g = build_line_graph(4, price=1.0, capacity=10.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=10.0, capacity=1.0)  # ONE use only
        net.deploy(2, 1, price=90.0, capacity=1.0)
        dag = DagSfcBuilder().single(1).single(1).build()
        r = MbbeEmbedder().embed(net, dag, 0, 3, FlowConfig(rate=1.0))
        assert r.success
        # Forced to use both instances despite the price gap.
        assert r.cost.alpha_vnf == {(1, 1): 1, (2, 1): 1}
