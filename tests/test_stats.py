"""Tests for the statistics module, cross-checked against scipy."""

import numpy as np
import pytest
from scipy import stats as sp_stats

from repro.exceptions import ConfigurationError
from repro.sim.metrics import TrialRecord
from repro.sim.stats import (
    PairedComparison,
    bootstrap_mean_ci,
    paired_comparison,
    welch_t_test,
)


class TestWelch:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_matches_scipy(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(10.0, 2.0, size=rng.integers(5, 40))
        b = rng.normal(11.0, 3.0, size=rng.integers(5, 40))
        ours = welch_t_test(a, b)
        ref = sp_stats.ttest_ind(a, b, equal_var=False)
        assert ours.t == pytest.approx(ref.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-6)

    def test_clear_difference_significant(self):
        a = [1.0, 1.1, 0.9, 1.05, 0.95]
        b = [5.0, 5.1, 4.9, 5.05, 4.95]
        r = welch_t_test(a, b)
        assert r.significant
        assert r.mean_a < r.mean_b

    def test_identical_constants(self):
        r = welch_t_test([2.0, 2.0, 2.0], [2.0, 2.0])
        assert r.p_value == 1.0
        assert not r.significant

    def test_needs_two_samples(self):
        with pytest.raises(ConfigurationError):
            welch_t_test([1.0], [1.0, 2.0])


class TestBootstrap:
    def test_ci_contains_mean_usually(self):
        rng = np.random.default_rng(5)
        hits = 0
        for _ in range(40):
            xs = rng.normal(50.0, 5.0, size=30)
            lo, hi = bootstrap_mean_ci(xs, rng=rng)
            if lo <= 50.0 <= hi:
                hits += 1
        assert hits >= 32  # ~95 % nominal coverage, generous slack

    def test_ci_ordered_and_tightens_with_n(self):
        rng = np.random.default_rng(6)
        small = rng.normal(0, 1, size=10)
        large = rng.normal(0, 1, size=1000)
        lo_s, hi_s = bootstrap_mean_ci(small, rng=1)
        lo_l, hi_l = bootstrap_mean_ci(large, rng=1)
        assert lo_s < hi_s and lo_l < hi_l
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_mean_ci([1.0])
        with pytest.raises(ConfigurationError):
            bootstrap_mean_ci([1.0, 2.0], confidence=1.5)

    def test_deterministic_under_seed(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_mean_ci(xs, rng=7) == bootstrap_mean_ci(xs, rng=7)


def rec(algo, trial, cost, *, x=1.0, success=True):
    return TrialRecord(
        x=x, algorithm=algo, trial=trial, seed=trial, success=success,
        total_cost=cost, vnf_cost=cost * 0.7, link_cost=cost * 0.3, runtime=0.0,
    )


class TestPairedComparison:
    def test_counts_wins_ties_losses(self):
        records = [
            rec("A", 0, 10.0), rec("B", 0, 12.0),  # A wins
            rec("A", 1, 10.0), rec("B", 1, 10.0),  # tie
            rec("A", 2, 15.0), rec("B", 2, 12.0),  # B wins
        ]
        c = paired_comparison(records, "A", "B")
        assert (c.wins_a, c.ties, c.wins_b) == (1, 1, 1)
        assert c.n_pairs == 3
        assert c.win_rate_a == pytest.approx(1 / 3)

    def test_mean_saving(self):
        records = [rec("A", 0, 80.0), rec("B", 0, 100.0)]
        c = paired_comparison(records, "A", "B")
        assert c.mean_saving == pytest.approx(0.2)

    def test_failed_trials_excluded(self):
        records = [
            rec("A", 0, 10.0), rec("B", 0, float("nan"), success=False),
            rec("A", 1, 10.0), rec("B", 1, 20.0),
        ]
        c = paired_comparison(records, "A", "B")
        assert c.n_pairs == 1

    def test_pairs_respect_x(self):
        records = [
            rec("A", 0, 10.0, x=1.0), rec("B", 0, 20.0, x=2.0),  # different x: no pair
        ]
        c = paired_comparison(records, "A", "B")
        assert c.n_pairs == 0

    def test_on_real_trials(self):
        """MBBE should dominate RANV pairwise on real instances."""
        from repro.config import NetworkConfig, ScenarioConfig, SfcConfig
        from repro.sim.experiment import SolverSpec
        from repro.sim.runner import run_trial
        from repro.utils.rng import trial_seed

        scenario = ScenarioConfig(
            network=NetworkConfig(size=30, connectivity=4.0, n_vnf_types=6),
            sfc=SfcConfig(size=4),
        )
        records = []
        for t in range(6):
            records.extend(
                run_trial(
                    scenario,
                    [SolverSpec(name="MBBE"), SolverSpec(name="RANV")],
                    seed=trial_seed(3, t),
                    trial=t,
                )
            )
        c = paired_comparison(records, "MBBE", "RANV")
        assert c.n_pairs == 6
        assert c.wins_a >= 5
        assert c.mean_saving > 0
