"""Tests for heterogeneous capacity/price transforms."""

import numpy as np
import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.exceptions import ConfigurationError
from repro.network.generator import generate_network
from repro.network.heterogeneous import (
    degree_proportional_link_capacity,
    lognormal_instance_capacity,
    transform_network,
)
from repro.sfc.generator import generate_dag_sfc
from repro.solvers import MbbeEmbedder


@pytest.fixture(scope="module")
def base_net():
    return generate_network(
        NetworkConfig(size=30, connectivity=4.0, n_vnf_types=6), rng=5
    )


class TestTransform:
    def test_identity_preserves_everything(self, base_net):
        clone = transform_network(base_net)
        assert clone.graph.num_links == base_net.graph.num_links
        for link in base_net.graph.links():
            c = clone.graph.link(link.u, link.v)
            assert (c.price, c.capacity) == (link.price, link.capacity)
        assert clone.deployments.count() == base_net.deployments.count()

    def test_link_transform_applied(self, base_net):
        out = transform_network(base_net, link=lambda l: (l.price * 2, l.capacity))
        for link in base_net.graph.links():
            assert out.graph.link(link.u, link.v).price == pytest.approx(2 * link.price)

    def test_instance_transform_applied(self, base_net):
        out = transform_network(
            base_net, instance=lambda i: (i.price, i.capacity + 1.0)
        )
        for inst in base_net.deployments.all_instances():
            assert out.instance(inst.node, inst.vnf_type).capacity == pytest.approx(
                inst.capacity + 1.0
            )

    def test_original_untouched(self, base_net):
        before = [l.capacity for l in base_net.graph.links()]
        transform_network(base_net, link=lambda l: (l.price, 999.0))
        after = [l.capacity for l in base_net.graph.links()]
        assert before == after


class TestDegreeProportional:
    def test_capacity_follows_min_degree(self, base_net):
        out = degree_proportional_link_capacity(base_net, base=2.0, per_degree=1.0)
        g = base_net.graph
        for link in g.links():
            expected = 2.0 + min(g.degree(link.u), g.degree(link.v))
            assert out.graph.link(link.u, link.v).capacity == pytest.approx(expected)

    def test_validation(self, base_net):
        with pytest.raises(ConfigurationError):
            degree_proportional_link_capacity(base_net, base=0.0)

    def test_still_embeddable(self, base_net):
        out = degree_proportional_link_capacity(base_net)
        dag = generate_dag_sfc(SfcConfig(size=4), n_vnf_types=6, rng=6)
        r = MbbeEmbedder().embed(out, dag, 0, 29, FlowConfig())
        assert r.success


class TestLognormal:
    def test_median_roughly_respected(self, base_net):
        out = lognormal_instance_capacity(base_net, median=4.0, sigma=0.5, rng=7)
        caps = [i.capacity for i in out.deployments.all_instances()]
        assert np.median(caps) == pytest.approx(4.0, rel=0.25)
        assert min(caps) > 0

    def test_deterministic_under_seed(self, base_net):
        a = lognormal_instance_capacity(base_net, rng=9)
        b = lognormal_instance_capacity(base_net, rng=9)
        for inst in a.deployments.all_instances():
            assert b.instance(inst.node, inst.vnf_type).capacity == pytest.approx(
                inst.capacity
            )

    def test_validation(self, base_net):
        with pytest.raises(ConfigurationError):
            lognormal_instance_capacity(base_net, median=0.0)
