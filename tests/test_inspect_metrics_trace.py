"""Tests for topology metrics, cost attribution and arrival traces."""

import networkx as nx
import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.embedding.inspect import attribute_cost
from repro.exceptions import ConfigurationError, DisconnectedNetworkError
from repro.network.generator import generate_network
from repro.network.metrics import (
    clustering_coefficient,
    degree_histogram,
    topology_stats,
)
from repro.network.topologies import grid, ring
from repro.sfc.generator import generate_dag_sfc
from repro.sim.online import OnlineSimulator
from repro.sim.trace import generate_trace, replay
from repro.solvers import MbbeEmbedder, MinvEmbedder

from .conftest import build_line_graph, build_square_graph


class TestTopologyStats:
    def test_ring_exact(self):
        g = ring(6)
        s = topology_stats(g, distance_samples=None)
        assert s.num_nodes == 6 and s.num_links == 6
        assert s.average_degree == pytest.approx(2.0)
        assert s.diameter == 3
        # Ring distances from any node: 1,1,2,2,3 -> mean 1.8.
        assert s.average_hop_distance == pytest.approx(1.8)
        assert s.clustering == 0.0

    def test_grid_diameter(self):
        s = topology_stats(grid(3, 4), distance_samples=None)
        assert s.diameter == (3 - 1) + (4 - 1)

    def test_matches_networkx_on_random(self):
        net = generate_network(NetworkConfig(size=40, connectivity=4.0, n_vnf_types=3), rng=3)
        g = net.graph
        nxg = nx.Graph((l.u, l.v) for l in g.links())
        s = topology_stats(g, distance_samples=None)
        assert s.diameter == nx.diameter(nxg)
        assert s.average_hop_distance == pytest.approx(
            nx.average_shortest_path_length(nxg)
        )

    def test_sampling_approximates_full(self):
        net = generate_network(NetworkConfig(size=120, connectivity=5.0, n_vnf_types=3), rng=4)
        full = topology_stats(net.graph, distance_samples=None)
        sampled = topology_stats(net.graph, distance_samples=30, rng=1)
        assert sampled.average_hop_distance == pytest.approx(
            full.average_hop_distance, rel=0.15
        )
        assert sampled.diameter <= full.diameter

    def test_disconnected_raises(self):
        g = build_line_graph(3)
        g.add_node(9)
        with pytest.raises(DisconnectedNetworkError):
            topology_stats(g, distance_samples=None)

    def test_degree_histogram(self):
        hist = degree_histogram(build_line_graph(4))
        assert hist == {1: 2, 2: 2}

    def test_clustering_triangle(self):
        g = build_square_graph()  # 0-1-2-3-0 + 0-2: triangles 012 and 023
        assert clustering_coefficient(g, 1) == pytest.approx(1.0)
        assert clustering_coefficient(g, 0) == pytest.approx(2 / 3)


class TestCostAttribution:
    @pytest.fixture
    def solved(self):
        net = generate_network(NetworkConfig(size=40, connectivity=4.0, n_vnf_types=6), rng=7)
        dag = generate_dag_sfc(SfcConfig(size=5), n_vnf_types=6, rng=8)
        r = MbbeEmbedder().embed(net, dag, 0, 39, FlowConfig())
        assert r.success
        return net, r

    def test_layers_sum_to_total(self, solved):
        net, r = solved
        attr = attribute_cost(net, r.embedding, FlowConfig())
        assert sum(lc.total for lc in attr.layers) == pytest.approx(attr.total)
        assert attr.total == pytest.approx(r.total_cost)

    def test_tail_layer_is_pure_link(self, solved):
        net, r = solved
        attr = attribute_cost(net, r.embedding, FlowConfig())
        tail = attr.layers[-1]
        assert tail.layer == r.embedding.dag.omega + 1
        assert tail.vnf_rental == 0.0 and tail.merger_rental == 0.0
        assert tail.inner_link_cost == 0.0

    def test_mergers_separated(self, solved):
        net, r = solved
        attr = attribute_cost(net, r.embedding, FlowConfig())
        merger_total = sum(lc.merger_rental for lc in attr.layers)
        assert merger_total > 0  # size-5 SFC has two mergers
        serial_layers = [
            lc for lc in attr.layers[:-1]
            if not r.embedding.dag.layer(lc.layer).has_merger
        ]
        assert all(lc.merger_rental == 0.0 for lc in serial_layers)

    def test_format_table(self, solved):
        net, r = solved
        text = attribute_cost(net, r.embedding, FlowConfig()).format_table()
        assert "layer" in text and "sum" in text

    def test_dominant_layer(self, solved):
        net, r = solved
        attr = attribute_cost(net, r.embedding, FlowConfig())
        dom = attr.dominant_layer()
        assert dom.total == max(lc.total for lc in attr.layers)


class TestTrace:
    def test_deterministic(self):
        kw = dict(steps=50, n_nodes=20, n_vnf_types=8, sfc=SfcConfig(size=3))
        a = generate_trace(rng=5, **kw)
        b = generate_trace(rng=5, **kw)
        assert len(a) == len(b)
        for ea, eb in zip(a, b):
            assert ea.step == eb.step
            assert ea.request.dag == eb.request.dag
            assert ea.departure_step == eb.departure_step

    def test_arrival_probability_respected(self):
        t = generate_trace(
            steps=400, n_nodes=20, n_vnf_types=8, sfc=SfcConfig(size=3),
            arrival_probability=0.25, rng=6,
        )
        assert 60 <= len(t) <= 140  # ~100 expected

    def test_zero_probability_empty(self):
        t = generate_trace(
            steps=50, n_nodes=20, n_vnf_types=8, sfc=SfcConfig(size=3),
            arrival_probability=0.0, rng=1,
        )
        assert len(t) == 0 and t.offered_load == 0.0

    def test_offered_load_positive(self):
        t = generate_trace(
            steps=100, n_nodes=20, n_vnf_types=8, sfc=SfcConfig(size=3),
            mean_hold=20.0, rng=2,
        )
        assert t.offered_load > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_trace(steps=0, n_nodes=5, n_vnf_types=8, sfc=SfcConfig(size=3))
        with pytest.raises(ConfigurationError):
            generate_trace(
                steps=5, n_nodes=5, n_vnf_types=8, sfc=SfcConfig(size=3), mean_hold=0.5
            )

    def test_replay_paired_traces(self):
        cfg = NetworkConfig(
            size=30, connectivity=4.0, n_vnf_types=8, deploy_ratio=0.4,
            vnf_capacity=2.0, link_capacity=3.0,
        )
        net = generate_network(cfg, rng=9)
        trace = generate_trace(
            steps=60, n_nodes=30, n_vnf_types=8, sfc=SfcConfig(size=3),
            mean_hold=15.0, rng=10,
        )
        results = {}
        for solver in (MbbeEmbedder(), MinvEmbedder()):
            sim = OnlineSimulator(net, solver)
            replay(trace, sim, rng=11)
            results[solver.name] = sim.stats()
        assert results["MBBE"].arrivals == results["MINV"].arrivals == len(trace)
        assert results["MBBE"].acceptance_ratio >= results["MINV"].acceptance_ratio - 0.05
        # All departures processed: no more active than accepted.
        for stats in results.values():
            assert 0 <= stats.active <= stats.accepted
