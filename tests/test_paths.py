"""Unit tests for the real-path value type."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network.paths import Path

from .conftest import build_line_graph, build_square_graph


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Path(())

    def test_consecutive_repeat_rejected(self):
        with pytest.raises(ConfigurationError):
            Path((1, 1))

    def test_trivial_path(self):
        p = Path.trivial(4)
        assert p.is_trivial
        assert p.length == 0
        assert p.source == p.target == 4
        assert list(p.edges()) == []


class TestAccessors:
    def test_length_counts_links(self):
        p = Path((0, 1, 2, 3))
        assert p.length == 3
        assert len(p) == 3

    def test_edges_canonical(self):
        p = Path((3, 1, 2))
        assert list(p.edges()) == [(1, 3), (1, 2)]

    def test_edge_set_dedups(self):
        p = Path((0, 1, 0))  # walk back and forth
        assert p.edge_set() == frozenset({(0, 1)})

    def test_is_simple(self):
        assert Path((0, 1, 2)).is_simple()
        assert not Path((0, 1, 0)).is_simple()


class TestGraphAware:
    def test_validate_ok(self, line5):
        Path((0, 1, 2)).validate(line5)

    def test_validate_bad_hop(self, line5):
        with pytest.raises(ConfigurationError):
            Path((0, 2)).validate(line5)

    def test_cost_sums_prices(self):
        g = build_square_graph(price=1.0)
        assert Path((1, 0, 2)).cost(g) == pytest.approx(1.0 + 2.0)

    def test_cost_of_trivial_is_zero(self, line5):
        assert Path.trivial(0).cost(line5) == 0.0


class TestOperations:
    def test_concat(self):
        p = Path((0, 1)).concat(Path((1, 2)))
        assert p.nodes == (0, 1, 2)

    def test_concat_mismatch(self):
        with pytest.raises(ConfigurationError):
            Path((0, 1)).concat(Path((2, 3)))

    def test_concat_with_trivial(self):
        p = Path((0, 1)).concat(Path.trivial(1))
        assert p.nodes == (0, 1)

    def test_reversed(self):
        assert Path((0, 1, 2)).reversed().nodes == (2, 1, 0)

    def test_equality_and_hash(self):
        assert Path((0, 1)) == Path((0, 1))
        assert hash(Path((0, 1))) == hash(Path((0, 1)))
        assert Path((0, 1)) != Path((1, 0))
