"""End-to-end chaos: the embedding service under substrate failures.

Runs the real asyncio server in-process with a fault script (or ad-hoc
injected events) and drives it with real clients. The central properties:

* concurrent submits + scripted failures never corrupt the ledger — after
  the dust settles every request is in exactly one terminal state and
  releasing the survivors leaves the server empty;
* repair outcomes reach the submitting connection as structured `notify`
  pushes with the documented status vocabulary;
* while degraded the server sheds with the retryable code ``degraded``,
  and :class:`~repro.service.retry.ResilientClient` rides out transient
  sheds and surfaces hard connection loss as typed
  :class:`~repro.exceptions.ServiceUnavailable`.

Plain ``asyncio.run`` per test — no asyncio pytest plugin is assumed.
"""

import asyncio

import pytest

from repro.config import NetworkConfig, SfcConfig
from repro.exceptions import ServiceUnavailable
from repro.faults.model import (
    FaultAction,
    FaultEvent,
    FaultSpec,
    FaultTarget,
    generate_fault_script,
)
from repro.network.generator import generate_network
from repro.service import (
    EmbeddingServer,
    ResilientClient,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
)
from repro.service.protocol import NOTIFY_STATUSES
from repro.sfc.generator import generate_dag_sfc
from repro.utils.rng import as_generator


def run(coro):
    return asyncio.run(coro)


def chaos_network(seed: int = 17):
    cfg = NetworkConfig(
        size=30, connectivity=4.0, n_vnf_types=6, deploy_ratio=0.5,
        vnf_capacity=100.0, link_capacity=100.0,
    )
    return generate_network(cfg, rng=seed)


def make_workload(network, n: int, *, seed: int = 11):
    """n submit tuples (rid, dag, src, dst, rate, solver_seed)."""
    gen = as_generator(seed)
    out = []
    for rid in range(n):
        dag = generate_dag_sfc(SfcConfig(size=3), 6, rng=gen)
        src, dst = (int(v) for v in gen.choice(network.num_nodes, size=2, replace=False))
        out.append((rid, dag, src, dst, 1.0, int(gen.integers(2**31))))
    return out


def drain_notifications(client: ServiceClient) -> list[dict]:
    out = []
    while not client.notifications.empty():
        out.append(client.notifications.get_nowait())
    return out


class TestChaosEndToEnd:
    def test_scripted_chaos_never_corrupts_the_ledger(self):
        """≥30 concurrent in-flight submits under a live fault script."""
        network = chaos_network()
        spec = FaultSpec(
            horizon=30, node_mtbf=25.0, link_mtbf=12.0, instance_mtbf=20.0,
            node_mttr=4.0, link_mttr=4.0, instance_mttr=4.0,
        )
        script = generate_fault_script(spec, network, rng=23)
        assert len(script) > 0
        workload = make_workload(network, 36)
        config = ServiceConfig(
            batch_size=4, queue_limit=128, workers=0,
            fault_script=script, chaos_tick=0.01,
        )

        async def drive():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    outcomes = await asyncio.gather(
                        *(
                            client.submit(rid, dag, src, dst, rate=rate, seed=s)
                            for rid, dag, src, dst, rate, s in workload
                        )
                    )
                    await server.wait_chaos_complete()
                    # Let the dispatcher finish the final fault batch, then a
                    # round-trip to flush any notify still in the socket.
                    await asyncio.sleep(0.1)
                    mid_stats = await client.stats()
                    notes = drain_notifications(client)
                    evicted = {
                        n["request_id"] for n in notes if n["status"] == "evicted"
                    }
                    released = {}
                    for outcome in outcomes:
                        if outcome.accepted and outcome.request_id not in evicted:
                            released[outcome.request_id] = await client.release(
                                outcome.request_id
                            )
                    notes.extend(drain_notifications(client))
                    final = await client.drain()
            return outcomes, mid_stats, notes, evicted, released, final

        outcomes, mid_stats, notes, evicted, released, final = run(drive())

        accepted = {o.request_id for o in outcomes if o.accepted}
        assert len(outcomes) == 36
        assert len(accepted) >= 20, "workload must mostly be admitted"
        assert mid_stats["counters"]["faults_injected"] > 0

        # Notifications: documented vocabulary only, only for admitted
        # requests, and eviction is terminal — nothing follows it.
        assert notes, "the script must have damaged at least one embedding"
        seen_after_evict: set[int] = set()
        for note in notes:
            assert note["status"] in NOTIFY_STATUSES
            assert note["request_id"] in accepted
            assert note["request_id"] not in seen_after_evict
            if note["status"] == "evicted":
                seen_after_evict.add(note["request_id"])
        assert evicted == {
            c for c in seen_after_evict
        }, "eviction notifications must match the evicted set"

        # Exactly one terminal state per accepted request: released by us
        # (survivor) or evicted by the ladder — never both, never neither.
        for rid in accepted:
            if rid in evicted:
                assert rid not in released or released[rid] is False
            else:
                assert released[rid] is True
        counters = final["counters"]
        assert counters["evictions"] == len(evicted)
        assert final["active"] == 0, "drain must leave the ledger empty"
        repairs = counters["repairs_rerouted"] + counters["repairs_reembedded"]
        assert repairs + counters["evictions"] > 0

        # Degradation telemetry made it to the stats surface.
        assert "faults" in mid_stats
        assert mid_stats["faults"]["tracked_embeddings"] >= 0

    def test_degraded_admission_sheds_with_structured_code(self):
        network = chaos_network(seed=3)
        config = ServiceConfig(
            batch_size=1, queue_limit=6, tick=0.2, workers=0,
            degraded_queue_factor=0.34,
        )
        workload = make_workload(network, 8, seed=5)

        async def drive():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    # Kill one link; wait until the dispatcher folded it in.
                    server.inject_fault(
                        FaultEvent(
                            time=0,
                            action=FaultAction.FAIL,
                            target=FaultTarget.link(0, 1),
                        )
                    )
                    for _ in range(100):
                        stats = await client.stats()
                        if stats["faults"]["degraded"]:
                            break
                        await asyncio.sleep(0.02)
                    assert stats["faults"]["degraded"]
                    outcomes = await asyncio.gather(
                        *(
                            client.submit(rid, dag, src, dst, rate=rate, seed=s)
                            for rid, dag, src, dst, rate, s in workload
                        )
                    )
                    shed = [o for o in outcomes if o.code == "degraded"]
                    # Recovery lifts the tightened limit again.
                    server.inject_fault(
                        FaultEvent(
                            time=0,
                            action=FaultAction.RECOVER,
                            target=FaultTarget.link(0, 1),
                        )
                    )
                    for _ in range(100):
                        stats = await client.stats()
                        if not stats["faults"]["degraded"]:
                            break
                        await asyncio.sleep(0.02)
                    assert not stats["faults"]["degraded"]
                    final = await client.stats()
            return outcomes, shed, final

        outcomes, shed, final = run(drive())
        # With the queue bound tightened to max(1, 6*0.34) = 2, the 8-wide
        # concurrent burst must shed at least one submit as `degraded`.
        assert shed, [o.code for o in outcomes]
        assert all(o.reason for o in shed)
        assert final["counters"]["shed_degraded"] == len(shed)

    def test_resilient_client_rides_out_transient_sheds(self):
        network = chaos_network(seed=7)
        config = ServiceConfig(batch_size=1, queue_limit=1, tick=0.05, workers=0)
        workload = make_workload(network, 6, seed=9)

        async def drive():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                policy = RetryPolicy(attempts=10, base_delay=0.02, max_delay=0.2)
                async with ResilientClient(host, port, policy=policy, rng=4) as rc:
                    outcomes = await asyncio.gather(
                        *(
                            rc.submit(rid, dag, src, dst, rate=rate, seed=s)
                            for rid, dag, src, dst, rate, s in workload
                        )
                    )
                    retries = rc.retries
                    await rc.drain()
            return outcomes, retries

        outcomes, retries = run(drive())
        # queue_limit=1 guarantees the 6-wide burst collides; the retrying
        # client must absorb every queue_full shed and land all submits.
        assert retries > 0
        assert all(o.accepted for o in outcomes), [
            (o.request_id, o.code) for o in outcomes
        ]

    def test_connection_loss_surfaces_as_service_unavailable(self):
        network = chaos_network(seed=13)

        async def drive():
            server = EmbeddingServer(network, ServiceConfig(workers=0))
            host, port = await server.start()
            client = await ServiceClient.connect(host, port)
            await server.stop()
            with pytest.raises(ServiceUnavailable):
                await client.stats()
            await client.close()
            # The retrying client's reconnect budget is bounded: with the
            # server gone it raises the typed error instead of spinning.
            policy = RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.02)
            rc = ResilientClient(host, port, policy=policy, rng=1)
            with pytest.raises(ServiceUnavailable):
                await rc.stats()
            await rc.close()

        run(drive())
