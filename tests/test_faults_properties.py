"""Property-based tests: fail → repair → recover conserves capacity.

The repair ladder's load-bearing invariant is bookkeeping-shaped, so it is
tested the bookkeeping way: random substrates, random arrival traces and
random MTBF/MTTR fault scripts replayed end to end, after which releasing
every surviving request must leave the residual state exactly pristine —
no leaked link rate, no leaked instance rate, regardless of how many
reroutes, pinned re-embeds and evictions happened along the way. One
hypothesis property drives the paper's four algorithms; a fixed-seed
sweep extends the same check to every solver in the registry.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.engine import RebalanceConfig
from repro.exceptions import IlpUnavailableError
from repro.faults.model import FaultSpec, FaultState, generate_fault_script
from repro.network.generator import generate_network
from repro.sfc.generator import generate_dag_sfc
from repro.sim.online import OnlineSimulator, SfcRequest
from repro.sim.trace import generate_trace, replay_with_faults
from repro.solvers import available_solvers, make_solver
from repro.utils.rng import as_generator

# Whole chaos replays per example: keep the example count modest.
CHAOS = settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

PAPER_ALGORITHMS = ("RANV", "MINV", "BBE", "MBBE")


def run_chaos_replay(algorithm: str, seed: int, intensity: float) -> OnlineSimulator:
    """One full fault-injected replay on a small random instance."""
    cfg = NetworkConfig(
        size=14,
        connectivity=3.0,
        n_vnf_types=4,
        deploy_ratio=0.6,
        vnf_capacity=60.0,
        link_capacity=60.0,
    )
    net = generate_network(cfg, rng=seed)
    steps = 25
    trace = generate_trace(
        steps=steps,
        n_nodes=cfg.size,
        n_vnf_types=cfg.n_vnf_types,
        sfc=SfcConfig(size=2),
        mean_hold=8.0,
        rng=seed + 1,
    )
    spec = FaultSpec(
        horizon=steps,
        node_mtbf=18.0 / intensity,
        link_mtbf=12.0 / intensity,
        instance_mtbf=15.0 / intensity,
        node_mttr=3.0,
        link_mttr=3.0,
        instance_mttr=3.0,
    )
    script = generate_fault_script(spec, net, rng=seed + 2)
    sim = OnlineSimulator(net, make_solver(algorithm))
    replay_with_faults(trace, script, sim, rng=seed + 3)
    return sim


def assert_capacity_conserved(sim: OnlineSimulator) -> None:
    """Releasing every survivor must zero out the residual bookkeeping."""
    stats = sim.stats()
    assert stats.active == len(list(sim.active_requests()))
    assert stats.evicted + stats.departed + stats.active == stats.accepted
    assert 0.0 <= stats.survival_ratio <= 1.0
    for rid in list(sim.active_requests()):
        sim.release(rid)
    leaked_links = list(sim.state.used_links())
    leaked_vnfs = list(sim.state.used_vnfs())
    assert leaked_links == [], f"leaked link rate after chaos: {leaked_links}"
    assert leaked_vnfs == [], f"leaked instance rate after chaos: {leaked_vnfs}"


class TestRepairConservesCapacity:
    @given(
        seed=st.integers(0, 100_000),
        algorithm=st.sampled_from(PAPER_ALGORITHMS),
        intensity=st.sampled_from((0.5, 1.0, 2.0)),
    )
    @CHAOS
    def test_random_fault_scripts_conserve_capacity(self, seed, algorithm, intensity):
        sim = run_chaos_replay(algorithm, seed, intensity)
        assert_capacity_conserved(sim)

    @pytest.mark.parametrize("algorithm", available_solvers())
    def test_every_registry_solver_conserves_capacity(self, algorithm):
        try:
            sim = run_chaos_replay(algorithm, seed=29, intensity=1.0)
        except IlpUnavailableError:
            pytest.skip(f"{algorithm} backend unavailable in this environment")
        assert_capacity_conserved(sim)

    @given(seed=st.integers(0, 100_000))
    @CHAOS
    def test_generated_scripts_always_end_pristine(self, seed):
        # The generator's contract: every timeline closes with a recovery,
        # so a fully-applied script leaves no element dead.
        cfg = NetworkConfig(size=12, connectivity=3.0, n_vnf_types=4, deploy_ratio=0.5)
        net = generate_network(cfg, rng=seed)
        spec = FaultSpec(horizon=30, node_mtbf=9.0, link_mtbf=7.0, instance_mtbf=11.0)
        script = generate_fault_script(spec, net, rng=seed)
        state = FaultState()
        for event in script:
            state.apply(event)
        assert not state.any_dead


class TestMigrationConservesCapacity:
    """Satellite 3: commit/release/migrate interleavings conserve capacity.

    Rebalance cycles interleave with arrivals and departures in arbitrary
    orders; since every applied migration is a release-old + reserve-new
    transaction on the same ledger, releasing the survivors afterwards must
    still zero out the residual bookkeeping — no leaked rate on either the
    vacated or the newly reserved elements, conflicts included.
    """

    #: eager enough that migrations actually fire on the tight substrate.
    _REBALANCE = RebalanceConfig(max_moves=2, candidates=4, min_gain=0.001, cooldown=0)

    @staticmethod
    def _tight_instance(seed: int) -> tuple[OnlineSimulator, dict[int, SfcRequest]]:
        cfg = NetworkConfig(
            size=14,
            connectivity=3.0,
            n_vnf_types=4,
            deploy_ratio=0.6,
            vnf_capacity=2.0,
            link_capacity=2.0,
        )
        net = generate_network(cfg, rng=seed)
        gen = as_generator(seed + 1)
        requests = {}
        for rid in range(10):
            dag = generate_dag_sfc(SfcConfig(size=2), cfg.n_vnf_types, rng=gen)
            src, dst = (int(v) for v in gen.choice(cfg.size, size=2, replace=False))
            requests[rid] = SfcRequest(
                request_id=rid, dag=dag, source=src, dest=dst,
                flow=FlowConfig(rate=1.0), seed=int(gen.integers(2**31)),
                arrival_index=rid,
            )
        return OnlineSimulator(net, make_solver("MBBE")), requests

    @given(
        seed=st.integers(0, 100_000),
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("submit"), st.integers(0, 9)),
                st.tuples(st.just("release"), st.integers(0, 9)),
                st.tuples(st.just("rebalance"), st.just(0)),
            ),
            max_size=20,
        ),
    )
    @CHAOS
    def test_migrate_interleavings_conserve_capacity(self, seed, ops):
        sim, requests = self._tight_instance(seed)
        for kind, arg in ops:
            if kind == "submit":
                if not sim.engine.is_active(arg):
                    sim.submit(requests[arg], rng=requests[arg].seed)
            elif kind == "release":
                if sim.engine.is_active(arg):
                    sim.release(arg)
            else:
                sim.run_rebalance_cycle(self._REBALANCE)
        assert_capacity_conserved(sim)
