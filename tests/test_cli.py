"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "6a", "--trials", "2"])
        assert args.id == "6a"
        assert args.trials == 2

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9z"])


class TestCommands:
    def test_list_solvers(self, capsys):
        assert main(["list-solvers"]) == 0
        out = capsys.readouterr().out
        assert "MBBE" in out and "RANV" in out

    def test_solve_success(self, capsys):
        rc = main([
            "solve", "--network-size", "30", "--sfc-size", "3",
            "--seed", "2", "--solvers", "MINV,MBBE",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MINV" in out and "MBBE" in out and "cost=" in out

    def test_figure_table2_tiny(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NET_SCALE", "0.06")  # 30-node network
        csv_path = tmp_path / "out.csv"
        rc = main([
            "figure", "table2", "--trials", "1", "--chart",
            "--csv", str(csv_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MBBE" in out
        assert csv_path.exists()
        assert "mean_cost" in csv_path.read_text()


class TestExtendedCommands:
    def test_compare(self, capsys):
        rc = main([
            "compare", "MBBE", "MINV", "--trials", "4",
            "--network-size", "30", "--sfc-size", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Welch t" in out and "paired:" in out

    def test_online(self, capsys):
        rc = main([
            "online", "--steps", "40", "--network-size", "30", "--sfc-size", "3",
            "--solvers", "MINV,MBBE",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "acceptance" in out or "ratio" in out
        assert "MBBE" in out

    def test_inspect_with_save(self, capsys, tmp_path):
        path = tmp_path / "inst.json"
        rc = main([
            "inspect", "--network-size", "30", "--sfc-size", "4",
            "--seed", "2", "--save", str(path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "layer" in out and "sum" in out
        assert path.exists()

        from repro.serialize import load_instance

        _, _, _, _, emb, meta = load_instance(str(path))
        assert emb is not None and meta["solver"] == "MBBE"
