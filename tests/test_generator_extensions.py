"""Tests for the SFC generator extensions (random structure, chains,
analyzer-derived DAGs)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.nfv.parallelism import ParallelismAnalyzer
from repro.nfv.vnf import standard_catalog
from repro.sfc.generator import (
    generate_analyzed_dag,
    generate_chain,
    generate_random_structure_dag,
)


class TestRandomStructure:
    @given(size=st.integers(1, 12), seed=st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_size_and_width_invariants(self, size, seed):
        dag = generate_random_structure_dag(size, 12, rng=seed)
        assert dag.size == size
        assert all(1 <= l.phi <= 3 for l in dag.layers)
        flat = [v for l in dag.layers for v in l.parallel]
        assert len(set(flat)) == size  # distinct categories

    def test_width_weights_bias(self):
        # All weight on width 1 -> strictly serial.
        dag = generate_random_structure_dag(6, 12, rng=1, width_weights=(1.0, 0.0, 0.0))
        assert all(l.phi == 1 for l in dag.layers)
        # All weight on width 3 -> layers of three (last may be smaller).
        dag3 = generate_random_structure_dag(7, 12, rng=1, width_weights=(0.0, 0.0, 1.0))
        assert [l.phi for l in dag3.layers] == [3, 3, 1]

    def test_structures_vary_across_seeds(self):
        shapes = {
            tuple(l.phi for l in generate_random_structure_dag(8, 12, rng=s).layers)
            for s in range(20)
        }
        assert len(shapes) > 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_random_structure_dag(0, 12)
        with pytest.raises(ConfigurationError):
            generate_random_structure_dag(5, 3)
        with pytest.raises(ConfigurationError):
            generate_random_structure_dag(5, 12, width_weights=(1.0,))
        with pytest.raises(ConfigurationError):
            generate_random_structure_dag(5, 12, width_weights=(0.0, 0.0, 0.0))


class TestChainGenerator:
    def test_distinct_chain(self):
        c = generate_chain(6, 12, rng=1)
        assert c.size == 6
        assert len(set(c.vnfs)) == 6

    def test_non_distinct_allows_repeats(self):
        c = generate_chain(20, 3, rng=2, distinct=False)
        assert c.size == 20
        assert set(c.vnfs) <= {1, 2, 3}

    def test_distinct_needs_enough_types(self):
        with pytest.raises(ConfigurationError):
            generate_chain(6, 3, rng=1)


class TestAnalyzedDag:
    def test_respects_analyzer_policy(self):
        cat = standard_catalog()
        permissive = ParallelismAnalyzer(cat, allow_merge_logic=True)
        strict = ParallelismAnalyzer(cat, allow_merge_logic=False)
        # Over many seeds, the permissive analyzer should merge more.
        p_layers = sum(
            generate_analyzed_dag(6, permissive, rng=s).omega for s in range(10)
        )
        s_layers = sum(
            generate_analyzed_dag(6, strict, rng=s).omega for s in range(10)
        )
        assert p_layers <= s_layers

    def test_size_preserved(self):
        cat = standard_catalog()
        an = ParallelismAnalyzer(cat)
        for s in range(5):
            dag = generate_analyzed_dag(5, an, rng=s)
            assert dag.size == 5

    def test_catalog_too_small(self):
        cat = standard_catalog(4)
        with pytest.raises(ConfigurationError):
            generate_analyzed_dag(5, ParallelismAnalyzer(cat), rng=1)

    def test_embeddable_end_to_end(self):
        from repro.config import FlowConfig, NetworkConfig
        from repro.network.generator import generate_network
        from repro.solvers import MbbeEmbedder

        cat = standard_catalog()
        dag = generate_analyzed_dag(5, ParallelismAnalyzer(cat), rng=9)
        net = generate_network(
            NetworkConfig(size=40, connectivity=4.0, n_vnf_types=len(cat)), rng=10
        )
        r = MbbeEmbedder().embed(net, dag, 0, 39, FlowConfig())
        assert r.success
