"""Tests for the knob-sensitivity sweep and Pareto tooling."""

import pytest

from repro.config import NetworkConfig, ScenarioConfig, SfcConfig
from repro.exceptions import ConfigurationError
from repro.sim.sensitivity import KnobPoint, pareto_front, recommend, sweep_knobs


@pytest.fixture(scope="module")
def small_scenario():
    return ScenarioConfig(
        network=NetworkConfig(size=25, connectivity=4.0, n_vnf_types=6),
        sfc=SfcConfig(size=4),
    )


@pytest.fixture(scope="module")
def sweep_points(small_scenario):
    return sweep_knobs(
        small_scenario,
        {"x_d": [1, 4], "candidate_cap": [1, 4]},
        trials=3,
        master_seed=11,
    )


class TestSweep:
    def test_full_factorial(self, sweep_points):
        assert len(sweep_points) == 4
        kwarg_sets = {tuple(sorted(p.kwargs.items())) for p in sweep_points}
        assert len(kwarg_sets) == 4

    def test_all_succeed_on_slack_instances(self, sweep_points):
        assert all(p.success_rate == 1.0 for p in sweep_points)
        assert all(p.mean_cost > 0 for p in sweep_points)

    def test_bigger_budgets_cheaper_or_equal(self, sweep_points):
        by_kwargs = {tuple(sorted(p.kwargs.items())): p for p in sweep_points}
        small = by_kwargs[(("candidate_cap", 1), ("x_d", 1))]
        big = by_kwargs[(("candidate_cap", 4), ("x_d", 4))]
        assert big.mean_cost <= small.mean_cost + 1e-6

    def test_paired_instances(self, small_scenario):
        """Same grid twice -> identical measurements (shared instances)."""
        a = sweep_knobs(small_scenario, {"x_d": [2]}, trials=2, master_seed=3)
        b = sweep_knobs(small_scenario, {"x_d": [2]}, trials=2, master_seed=3)
        assert a[0].mean_cost == pytest.approx(b[0].mean_cost)

    def test_validation(self, small_scenario):
        with pytest.raises(ConfigurationError):
            sweep_knobs(small_scenario, {}, trials=1)
        with pytest.raises(ConfigurationError):
            sweep_knobs(small_scenario, {"x_d": [1]}, trials=0)

    def test_label(self):
        p = KnobPoint(kwargs={"x_d": 4}, mean_cost=1.0, mean_runtime=0.1, success_rate=1.0)
        assert p.label() == "{x_d=4}"


def kp(cost, runtime, success=1.0, **kwargs):
    return KnobPoint(
        kwargs=kwargs, mean_cost=cost, mean_runtime=runtime, success_rate=success
    )


class TestPareto:
    def test_dominated_removed(self):
        a = kp(10.0, 1.0, x=1)
        b = kp(12.0, 2.0, x=2)  # dominated by a
        c = kp(8.0, 3.0, x=3)
        front = pareto_front([a, b, c])
        assert a in front and c in front and b not in front

    def test_failing_configs_excluded(self):
        good = kp(10.0, 1.0, x=1)
        dead = kp(float("nan"), 0.5, success=0.0, x=2)
        assert pareto_front([good, dead]) == [good]

    def test_front_sorted_by_runtime(self):
        pts = [kp(8.0, 3.0, x=1), kp(10.0, 1.0, x=2)]
        front = pareto_front(pts)
        assert [p.mean_runtime for p in front] == [1.0, 3.0]

    def test_sweep_front_nonempty(self, sweep_points):
        front = pareto_front(sweep_points)
        assert 1 <= len(front) <= len(sweep_points)


class TestRecommend:
    def test_budget_respected(self):
        fast = kp(12.0, 0.5, x=1)
        slow = kp(8.0, 5.0, x=2)
        assert recommend([fast, slow], runtime_budget=1.0) is fast
        assert recommend([fast, slow], runtime_budget=None) is slow

    def test_success_floor(self):
        flaky = kp(5.0, 0.5, success=0.5, x=1)
        solid = kp(9.0, 0.5, success=1.0, x=2)
        assert recommend([flaky, solid]) is solid
        assert recommend([flaky, solid], min_success=0.5) is flaky

    def test_no_eligible_raises(self):
        slow = kp(8.0, 5.0, x=1)
        with pytest.raises(ConfigurationError):
            recommend([slow], runtime_budget=1.0)

    def test_on_real_sweep(self, sweep_points):
        best = recommend(sweep_points)
        assert best.mean_cost == min(p.mean_cost for p in sweep_points)
