"""Tests for the paper's random network generator (§5.1 contract)."""

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.exceptions import ConfigurationError
from repro.network.generator import generate_network, target_link_count
from repro.network.spanning import (
    degree_sequence,
    is_connected_edges,
    random_spanning_tree_edges,
)
from repro.types import MERGER_VNF


class TestSpanningTree:
    def test_tree_has_n_minus_1_edges_and_connects(self):
        for seed in range(5):
            edges = random_spanning_tree_edges(20, seed)
            assert len(edges) == 19
            assert is_connected_edges(20, edges)

    def test_single_node(self):
        assert random_spanning_tree_edges(1, 0) == []

    def test_deterministic(self):
        assert random_spanning_tree_edges(15, 42) == random_spanning_tree_edges(15, 42)

    def test_degree_sequence(self):
        deg = degree_sequence(3, [(0, 1), (1, 2)])
        assert list(deg) == [1, 2, 1]


class TestTargetLinkCount:
    def test_connectivity_six(self):
        assert target_link_count(500, 6.0) == 1500

    def test_never_below_tree(self):
        assert target_link_count(10, 0.5) == 9

    def test_never_above_complete(self):
        assert target_link_count(5, 100.0) == 10


class TestGeneratedTopology:
    def test_connected_and_sized(self):
        net = generate_network(NetworkConfig(size=100, connectivity=5.0, n_vnf_types=4), rng=1)
        assert net.graph.num_nodes == 100
        assert net.graph.is_connected()

    def test_average_degree_close_to_target(self):
        cfg = NetworkConfig(size=200, connectivity=6.0, n_vnf_types=4)
        net = generate_network(cfg, rng=2)
        assert net.graph.average_degree() == pytest.approx(6.0, abs=0.1)

    def test_dense_request_works(self):
        cfg = NetworkConfig(size=12, connectivity=9.0, n_vnf_types=2)
        net = generate_network(cfg, rng=3)
        assert net.graph.average_degree() == pytest.approx(9.0, abs=0.4)
        assert net.graph.is_connected()

    def test_deterministic_under_seed(self):
        cfg = NetworkConfig(size=50, connectivity=4.0, n_vnf_types=3)
        a = generate_network(cfg, rng=9)
        b = generate_network(cfg, rng=9)
        assert {l.key for l in a.graph.links()} == {l.key for l in b.graph.links()}
        for link_a in a.graph.links():
            link_b = b.graph.link(link_a.u, link_a.v)
            assert link_a.price == link_b.price

    def test_different_seeds_differ(self):
        cfg = NetworkConfig(size=50, connectivity=4.0, n_vnf_types=3)
        a = generate_network(cfg, rng=1)
        b = generate_network(cfg, rng=2)
        assert {l.key for l in a.graph.links()} != {l.key for l in b.graph.links()}


class TestGeneratedDeployments:
    def test_deploy_ratio_statistics(self):
        cfg = NetworkConfig(size=400, connectivity=4.0, n_vnf_types=5, deploy_ratio=0.5)
        net = generate_network(cfg, rng=4)
        for t in range(1, 6):
            ratio = net.deployments.deployment_ratio(t, 400)
            assert 0.40 <= ratio <= 0.60  # ~5 sigma band for p=.5, n=400

    def test_every_category_deployed_somewhere(self):
        cfg = NetworkConfig(size=30, connectivity=3.0, n_vnf_types=8, deploy_ratio=0.1)
        net = generate_network(cfg, rng=5)
        for t in range(1, 9):
            assert net.nodes_with(t)
        assert net.merger_nodes()

    def test_vnf_price_fluctuation_bounds(self):
        cfg = NetworkConfig(
            size=300, connectivity=4.0, n_vnf_types=3, vnf_price_fluctuation=0.05
        )
        net = generate_network(cfg, rng=6)
        prices = [
            inst.price
            for inst in net.deployments.all_instances()
            if inst.vnf_type != MERGER_VNF
        ]
        assert min(prices) >= 95.0 - 1e-9
        assert max(prices) <= 105.0 + 1e-9
        assert np.mean(prices) == pytest.approx(100.0, rel=0.02)

    def test_link_price_ratio(self):
        cfg = NetworkConfig(size=300, connectivity=6.0, n_vnf_types=3, price_ratio=0.2)
        net = generate_network(cfg, rng=7)
        link_prices = [l.price for l in net.graph.links()]
        assert np.mean(link_prices) == pytest.approx(20.0, rel=0.03)

    def test_capacities_applied(self):
        cfg = NetworkConfig(
            size=20, connectivity=3.0, n_vnf_types=2, vnf_capacity=3.0, link_capacity=4.0
        )
        net = generate_network(cfg, rng=8)
        assert all(l.capacity == 4.0 for l in net.graph.links())
        assert all(i.capacity == 3.0 for i in net.deployments.all_instances())

    def test_merger_price_scale(self):
        cfg = NetworkConfig(
            size=200, connectivity=4.0, n_vnf_types=2, merger_price_scale=0.5
        )
        net = generate_network(cfg, rng=9)
        merger_prices = [
            inst.price
            for inst in net.deployments.all_instances()
            if inst.vnf_type == MERGER_VNF
        ]
        assert np.mean(merger_prices) == pytest.approx(50.0, rel=0.05)
