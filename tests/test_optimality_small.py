"""Cross-solver optimality tests on tiny instances.

The two independent oracles (layer-DP with exact Steiner multicast, and the
flow MILP) must agree; every heuristic must be lower-bounded by them; the
heuristics' gap to optimal must stay moderate on easy instances.
"""

import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.embedding.feasibility import verify_embedding
from repro.network.generator import generate_network
from repro.sfc.generator import generate_dag_sfc
from repro.solvers import (
    BbeEmbedder,
    ExactEmbedder,
    IlpEmbedder,
    MbbeEmbedder,
    MinvEmbedder,
    RanvEmbedder,
)


def tiny_instance(seed: int, *, size: int = 12, sfc_size: int = 4):
    cfg = NetworkConfig(
        size=size, connectivity=3.0, n_vnf_types=5, deploy_ratio=0.6,
        vnf_capacity=100.0, link_capacity=100.0,
    )
    net = generate_network(cfg, rng=seed)
    dag = generate_dag_sfc(SfcConfig(size=sfc_size), n_vnf_types=5, rng=seed + 1000)
    return net, dag


class TestOraclesAgree:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_exact_equals_ilp(self, seed):
        net, dag = tiny_instance(seed)
        exact = ExactEmbedder().embed(net, dag, 0, net.num_nodes - 1, FlowConfig())
        ilp = IlpEmbedder().embed(net, dag, 0, net.num_nodes - 1, FlowConfig())
        assert exact.success and ilp.success
        assert exact.total_cost == pytest.approx(ilp.total_cost, rel=1e-6)

    @pytest.mark.parametrize("seed", [6, 7])
    def test_oracles_agree_single_layer(self, seed):
        net, dag = tiny_instance(seed, sfc_size=3)
        exact = ExactEmbedder().embed(net, dag, 1, 8, FlowConfig())
        ilp = IlpEmbedder().embed(net, dag, 1, 8, FlowConfig())
        assert exact.total_cost == pytest.approx(ilp.total_cost, rel=1e-6)

    def test_ilp_objective_matches_referee_cost(self):
        net, dag = tiny_instance(11)
        r = IlpEmbedder().embed(net, dag, 0, 5, FlowConfig())
        assert r.success
        assert r.stats["milp_objective"] == pytest.approx(r.total_cost, rel=1e-6)


class TestHeuristicsVsOptimal:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    def test_never_below_optimal(self, seed):
        net, dag = tiny_instance(seed)
        opt = ExactEmbedder().embed(net, dag, 0, net.num_nodes - 1, FlowConfig())
        assert opt.success
        for factory in (BbeEmbedder, MbbeEmbedder, MinvEmbedder, RanvEmbedder):
            r = factory().embed(net, dag, 0, net.num_nodes - 1, FlowConfig(), rng=seed)
            assert r.success
            assert r.total_cost >= opt.total_cost - 1e-6

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_bbe_mbbe_near_optimal(self, seed):
        """BBE/MBBE stay within a modest factor of optimal on easy instances."""
        net, dag = tiny_instance(seed)
        opt = ExactEmbedder().embed(net, dag, 0, net.num_nodes - 1, FlowConfig())
        bbe = BbeEmbedder().embed(net, dag, 0, net.num_nodes - 1, FlowConfig())
        mbbe = MbbeEmbedder().embed(net, dag, 0, net.num_nodes - 1, FlowConfig())
        assert bbe.total_cost <= 1.25 * opt.total_cost
        assert mbbe.total_cost <= 1.25 * opt.total_cost


class TestCapacitatedIlp:
    def test_ilp_respects_tight_capacity(self):
        """With one link capacity-1, the ILP must route around or fail —
        never overload (the referee would raise)."""
        cfg = NetworkConfig(
            size=10, connectivity=3.0, n_vnf_types=4, deploy_ratio=0.7,
            vnf_capacity=1.0, link_capacity=1.0,
        )
        net = generate_network(cfg, rng=21)
        dag = generate_dag_sfc(SfcConfig(size=3), n_vnf_types=4, rng=22)
        r = IlpEmbedder().embed(net, dag, 0, 9, FlowConfig(rate=1.0))
        if r.success:  # feasibility is instance-dependent; validity is not
            verify_embedding(net, r.embedding, FlowConfig(rate=1.0))

    def test_ilp_finds_capacity_feasible_when_exact_dp_cannot(self):
        """The DP oracle ignores capacity coupling; the ILP handles it."""
        from repro.network.cloud import CloudNetwork
        from repro.sfc.builder import DagSfcBuilder

        from .conftest import build_square_graph

        g = build_square_graph(price=1.0, capacity=1.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=10.0, capacity=10.0)
        net.deploy(3, 2, price=10.0, capacity=10.0)
        dag = DagSfcBuilder().single(1).single(2).build()
        r = IlpEmbedder().embed(net, dag, 0, 2, FlowConfig(rate=1.0))
        assert r.success
        verify_embedding(net, r.embedding, FlowConfig(rate=1.0))
