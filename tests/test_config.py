"""Unit tests for the configuration dataclasses (Table 2 semantics)."""

import pytest

from repro.config import (
    FlowConfig,
    NetworkConfig,
    ScenarioConfig,
    SfcConfig,
    table2_defaults,
)
from repro.exceptions import ConfigurationError


class TestNetworkConfig:
    def test_defaults_are_table2(self):
        cfg = NetworkConfig()
        assert cfg.size == 500
        assert cfg.connectivity == 6.0
        assert cfg.deploy_ratio == 0.5
        assert cfg.price_ratio == 0.20
        assert cfg.vnf_price_fluctuation == 0.05

    def test_mean_link_price_from_ratio(self):
        cfg = NetworkConfig(price_ratio=0.2, mean_vnf_price=100.0)
        assert cfg.mean_link_price == pytest.approx(20.0)

    def test_merger_ratio_defaults_to_deploy_ratio(self):
        cfg = NetworkConfig(deploy_ratio=0.3)
        assert cfg.effective_merger_deploy_ratio == pytest.approx(0.3)

    def test_merger_ratio_override(self):
        cfg = NetworkConfig(deploy_ratio=0.3, merger_deploy_ratio=0.9)
        assert cfg.effective_merger_deploy_ratio == pytest.approx(0.9)

    def test_rejects_tiny_size(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(size=1)

    def test_rejects_connectivity_below_tree(self):
        # A 500-node connected graph needs average degree >= 2*(499)/500.
        with pytest.raises(ConfigurationError):
            NetworkConfig(size=500, connectivity=1.0)

    def test_rejects_connectivity_above_complete(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(size=10, connectivity=9.5)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(deploy_ratio=1.5)

    def test_with_replaces_and_validates(self):
        cfg = NetworkConfig().with_(size=100)
        assert cfg.size == 100
        with pytest.raises(ConfigurationError):
            NetworkConfig().with_(deploy_ratio=-0.1)


class TestSfcConfig:
    def test_defaults(self):
        cfg = SfcConfig()
        assert cfg.size == 5
        assert cfg.max_parallel == 3

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            SfcConfig(size=0)


class TestFlowConfig:
    def test_defaults_unit(self):
        f = FlowConfig()
        assert f.size == 1.0
        assert f.rate == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            FlowConfig(size=0.0)
        with pytest.raises(ConfigurationError):
            FlowConfig(rate=-1.0)


class TestScenario:
    def test_table2_defaults_complete(self):
        sc = table2_defaults()
        assert sc.network.size == 500
        assert sc.sfc.size == 5
        assert sc.flow.rate == 1.0

    def test_with_network_produces_new_scenario(self):
        sc = table2_defaults()
        sc2 = sc.with_network(size=50)
        assert sc2.network.size == 50
        assert sc.network.size == 500  # original untouched

    def test_with_sfc(self):
        sc = ScenarioConfig().with_sfc(size=9)
        assert sc.sfc.size == 9
