"""Shared fixtures: small deterministic networks and DAG-SFCs.

Also arms the runtime async sanitizer (:mod:`repro.utils.sanitizer`) for the
service-tier e2e suites: their ``asyncio.run`` is replaced by an instrumented
runner, and any event-loop stall or cross-task shared-state mutation fails
the test at teardown. Set ``REPRO_SANITIZER=0`` to switch it off.
"""

from __future__ import annotations

import asyncio
import os
from typing import Iterator

import pytest

from repro.config import NetworkConfig, SfcConfig
from repro.network.cloud import CloudNetwork
from repro.network.generator import generate_network
from repro.network.graph import Graph
from repro.sfc.builder import DagSfcBuilder
from repro.sfc.dag import DagSfc
from repro.types import MERGER_VNF
from repro.utils.sanitizer import LoopSanitizer

#: e2e suites that drive the asyncio service; every static RPL7xx claim is
#: cross-checked dynamically while they run.
SANITIZED_TEST_FILES = (
    "test_service.py",
    "test_service_chaos.py",
    "test_sharding.py",
)


@pytest.fixture(autouse=True)
def async_sanitizer(
    request: pytest.FixtureRequest, monkeypatch: pytest.MonkeyPatch
) -> Iterator[LoopSanitizer | None]:
    """Instrument ``asyncio.run`` for the service e2e suites.

    Yields the active :class:`LoopSanitizer` (or None where not armed) and
    raises at teardown if it recorded a stall or a cross-task mutation, so a
    regression that blocks the loop fails even when the test's assertions
    still pass.
    """
    if request.node.path.name not in SANITIZED_TEST_FILES:
        yield None
        return
    if os.environ.get("REPRO_SANITIZER", "1") == "0":
        yield None
        return
    sanitizer = LoopSanitizer()
    real_run = asyncio.run

    def instrumented_run(coro, **kwargs):  # type: ignore[no-untyped-def]
        return sanitizer.run(coro, runner=real_run)

    monkeypatch.setattr(asyncio, "run", instrumented_run)
    yield sanitizer
    monkeypatch.undo()
    sanitizer.check()


def build_line_graph(n: int, *, price: float = 1.0, capacity: float = 100.0) -> Graph:
    """0 - 1 - 2 - … - (n-1)."""
    g = Graph()
    g.add_nodes(range(n))
    for i in range(n - 1):
        g.add_link(i, i + 1, price=price, capacity=capacity)
    return g


def build_square_graph(*, price: float = 1.0, capacity: float = 100.0) -> Graph:
    """4-cycle 0-1-2-3-0 plus the diagonal 0-2 at double price."""
    g = Graph()
    g.add_nodes(range(4))
    g.add_link(0, 1, price=price, capacity=capacity)
    g.add_link(1, 2, price=price, capacity=capacity)
    g.add_link(2, 3, price=price, capacity=capacity)
    g.add_link(3, 0, price=price, capacity=capacity)
    g.add_link(0, 2, price=2 * price, capacity=capacity)
    return g


@pytest.fixture
def line5() -> Graph:
    return build_line_graph(5)


@pytest.fixture
def square() -> Graph:
    return build_square_graph()


@pytest.fixture
def small_config() -> NetworkConfig:
    """A miniature paper-style network configuration."""
    return NetworkConfig(
        size=30,
        connectivity=4.0,
        n_vnf_types=6,
        deploy_ratio=0.5,
        vnf_capacity=100.0,
        link_capacity=100.0,
    )


@pytest.fixture
def small_network(small_config: NetworkConfig) -> CloudNetwork:
    return generate_network(small_config, rng=7)


@pytest.fixture
def fig2_dag() -> DagSfc:
    """The Fig. 2 DAG-SFC: f1 | {f2,f3,f4,f5}+merger | {f6,f7}+merger."""
    return (
        DagSfcBuilder()
        .single(1)
        .parallel(2, 3, 4, 5)
        .parallel(6, 7)
        .build()
    )


def fully_deployed_cloud(
    graph: Graph,
    vnf_types: tuple[int, ...],
    *,
    price: float = 10.0,
    capacity: float = 100.0,
) -> CloudNetwork:
    """Deploy every given type (plus merger) on every node at a flat price."""
    net = CloudNetwork(graph)
    for node in graph.nodes():
        for t in vnf_types:
            net.deploy(node, t, price=price, capacity=capacity)
        net.deploy(node, MERGER_VNF, price=price, capacity=capacity)
    return net
