"""Shared fixtures: small deterministic networks and DAG-SFCs."""

from __future__ import annotations

import pytest

from repro.config import NetworkConfig, SfcConfig
from repro.network.cloud import CloudNetwork
from repro.network.generator import generate_network
from repro.network.graph import Graph
from repro.sfc.builder import DagSfcBuilder
from repro.sfc.dag import DagSfc
from repro.types import MERGER_VNF


def build_line_graph(n: int, *, price: float = 1.0, capacity: float = 100.0) -> Graph:
    """0 - 1 - 2 - … - (n-1)."""
    g = Graph()
    g.add_nodes(range(n))
    for i in range(n - 1):
        g.add_link(i, i + 1, price=price, capacity=capacity)
    return g


def build_square_graph(*, price: float = 1.0, capacity: float = 100.0) -> Graph:
    """4-cycle 0-1-2-3-0 plus the diagonal 0-2 at double price."""
    g = Graph()
    g.add_nodes(range(4))
    g.add_link(0, 1, price=price, capacity=capacity)
    g.add_link(1, 2, price=price, capacity=capacity)
    g.add_link(2, 3, price=price, capacity=capacity)
    g.add_link(3, 0, price=price, capacity=capacity)
    g.add_link(0, 2, price=2 * price, capacity=capacity)
    return g


@pytest.fixture
def line5() -> Graph:
    return build_line_graph(5)


@pytest.fixture
def square() -> Graph:
    return build_square_graph()


@pytest.fixture
def small_config() -> NetworkConfig:
    """A miniature paper-style network configuration."""
    return NetworkConfig(
        size=30,
        connectivity=4.0,
        n_vnf_types=6,
        deploy_ratio=0.5,
        vnf_capacity=100.0,
        link_capacity=100.0,
    )


@pytest.fixture
def small_network(small_config: NetworkConfig) -> CloudNetwork:
    return generate_network(small_config, rng=7)


@pytest.fixture
def fig2_dag() -> DagSfc:
    """The Fig. 2 DAG-SFC: f1 | {f2,f3,f4,f5}+merger | {f6,f7}+merger."""
    return (
        DagSfcBuilder()
        .single(1)
        .parallel(2, 3, 4, 5)
        .parallel(6, 7)
        .build()
    )


def fully_deployed_cloud(
    graph: Graph,
    vnf_types: tuple[int, ...],
    *,
    price: float = 10.0,
    capacity: float = 100.0,
) -> CloudNetwork:
    """Deploy every given type (plus merger) on every node at a flat price."""
    net = CloudNetwork(graph)
    for node in graph.nodes():
        for t in vnf_types:
            net.deploy(node, t, price=price, capacity=capacity)
        net.deploy(node, MERGER_VNF, price=price, capacity=capacity)
    return net
