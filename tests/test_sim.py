"""Tests for the simulation harness: metrics, experiments, runner, figures."""

import math

import pytest

from repro.config import ScenarioConfig, NetworkConfig, SfcConfig
from repro.exceptions import ConfigurationError
from repro.sim.experiment import ExperimentSpec, SolverSpec
from repro.sim.figures import (
    FIGURES,
    figure_6a,
    figure_6b,
    figure_by_id,
    table2_experiment,
)
from repro.sim.metrics import TrialRecord, aggregate
from repro.sim.runner import run_experiment, run_trial
from repro.utils.rng import trial_seed


def small_scenario(**net_kw) -> ScenarioConfig:
    base = dict(size=25, connectivity=4.0, n_vnf_types=6, deploy_ratio=0.6,
                vnf_capacity=50.0, link_capacity=50.0)
    base.update(net_kw)
    return ScenarioConfig(network=NetworkConfig(**base), sfc=SfcConfig(size=4))


def tiny_spec(trials=2) -> ExperimentSpec:
    return ExperimentSpec(
        name="tiny",
        title="tiny sweep",
        x_label="x",
        scenarios={1.0: small_scenario(), 2.0: small_scenario(deploy_ratio=0.3)},
        solvers=(SolverSpec(name="MINV"), SolverSpec(name="MBBE")),
        trials=trials,
        master_seed=99,
    )


class TestMetrics:
    def _rec(self, **kw):
        base = dict(x=1.0, algorithm="A", trial=0, seed=0, success=True,
                    total_cost=10.0, vnf_cost=6.0, link_cost=4.0, runtime=0.1)
        base.update(kw)
        return TrialRecord(**base)

    def test_aggregate_means(self):
        recs = [self._rec(trial=i, total_cost=10.0 + i) for i in range(4)]
        (s,) = aggregate(recs)
        assert s.mean_cost == pytest.approx(11.5)
        assert s.n_trials == s.n_success == 4
        assert s.success_rate == 1.0
        assert s.ci95_cost > 0

    def test_failures_excluded_from_cost(self):
        recs = [
            self._rec(trial=0, total_cost=10.0),
            self._rec(trial=1, success=False, total_cost=float("nan")),
        ]
        (s,) = aggregate(recs)
        assert s.mean_cost == pytest.approx(10.0)
        assert s.n_success == 1
        assert s.success_rate == 0.5

    def test_all_failed_gives_nan(self):
        recs = [self._rec(success=False, total_cost=float("nan"))]
        (s,) = aggregate(recs)
        assert math.isnan(s.mean_cost)

    def test_groups_by_x_and_algorithm(self):
        recs = [
            self._rec(x=1.0, algorithm="A"),
            self._rec(x=1.0, algorithm="B"),
            self._rec(x=2.0, algorithm="A"),
        ]
        assert len(aggregate(recs)) == 3


class TestExperimentSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec("e", "t", "x", {}, (SolverSpec(name="MINV"),))
        with pytest.raises(ConfigurationError):
            ExperimentSpec("e", "t", "x", {1.0: small_scenario()}, ())
        with pytest.raises(ConfigurationError):
            ExperimentSpec(
                "e", "t", "x", {1.0: small_scenario()},
                (SolverSpec(name="MINV"), SolverSpec(name="MINV")),
            )

    def test_solver_max_x(self):
        s = SolverSpec(name="BBE", max_x=5.0)
        assert s.active_at(5.0)
        assert not s.active_at(6.0)

    def test_total_embeddings(self):
        spec = tiny_spec(trials=3)
        assert spec.total_embeddings() == 2 * 2 * 3


class TestRunner:
    def test_run_trial_paired(self):
        recs = run_trial(
            small_scenario(),
            [SolverSpec(name="MINV"), SolverSpec(name="MBBE")],
            seed=42, x=1.0, trial=7,
        )
        assert [r.algorithm for r in recs] == ["MINV", "MBBE"]
        assert all(r.trial == 7 and r.x == 1.0 and r.seed == 42 for r in recs)
        assert all(r.success for r in recs)

    def test_run_trial_deterministic(self):
        a = run_trial(small_scenario(), [SolverSpec(name="RANV")], seed=5)
        b = run_trial(small_scenario(), [SolverSpec(name="RANV")], seed=5)
        assert a[0].total_cost == pytest.approx(b[0].total_cost)

    def test_adding_solver_does_not_perturb_others(self):
        only = run_trial(small_scenario(), [SolverSpec(name="RANV")], seed=5)
        both = run_trial(
            small_scenario(),
            [SolverSpec(name="RANV"), SolverSpec(name="MINV")],
            seed=5,
        )
        assert only[0].total_cost == pytest.approx(both[0].total_cost)

    def test_run_experiment_counts(self):
        spec = tiny_spec(trials=2)
        recs = run_experiment(spec, parallel=1)
        assert len(recs) == spec.total_embeddings()
        assert {r.x for r in recs} == {1.0, 2.0}

    def test_run_experiment_parallel_matches_serial(self):
        spec = tiny_spec(trials=2)
        serial = run_experiment(spec, parallel=1)
        par = run_experiment(spec, parallel=2)
        key = lambda r: (r.x, r.algorithm, r.trial)
        for a, b in zip(sorted(serial, key=key), sorted(par, key=key)):
            assert a.seed == b.seed
            assert a.total_cost == pytest.approx(b.total_cost)

    def test_trial_seeds_distinct_across_points(self):
        spec = tiny_spec(trials=2)
        recs = run_experiment(spec, parallel=1)
        seeds = {(r.x, r.trial): r.seed for r in recs}
        assert len(set(seeds.values())) == 4


class TestFigureDefinitions:
    def test_all_figures_registered(self):
        assert {"6a", "6b", "6c", "6d", "6e", "6f", "table2", "ext-robustness"} <= set(FIGURES)

    def test_fig6a_shape(self):
        spec = figure_6a(trials=1)
        assert spec.x_values == tuple(float(x) for x in range(1, 10))
        bbe = next(s for s in spec.solvers if s.name == "BBE")
        assert bbe.max_x == 5.0  # paper stops BBE at SFC size 5
        for x, sc in spec.scenarios.items():
            assert sc.sfc.size == int(x)

    def test_fig6b_sizes(self, monkeypatch):
        monkeypatch.delenv("REPRO_NET_SCALE", raising=False)
        spec = figure_6b(trials=1)
        assert [int(x) for x in spec.x_values] == [10, 20, 50, 100, 200, 500, 1000]
        assert spec.scenarios[50.0].network.size == 50

    def test_net_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_SCALE", "0.1")
        spec = figure_6b(trials=1)
        assert spec.scenarios[500.0].network.size == 50
        assert spec.scenarios[10.0].network.size == 10  # floor at 10

    def test_trials_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "3")
        assert figure_6a().trials == 3

    def test_table2_single_point(self):
        spec = table2_experiment(trials=1)
        assert len(spec.x_values) == 1

    def test_figure_by_id(self):
        assert figure_by_id("6C", trials=1).name == "fig6c"
        with pytest.raises(ConfigurationError):
            figure_by_id("9z")

    def test_all_sweeps_have_four_series(self):
        for fid in FIGURES:
            if fid.startswith("ext-"):
                continue  # extension sweeps choose their own line-up
            spec = figure_by_id(fid, trials=1)
            assert {s.name for s in spec.solvers} == {"RANV", "MINV", "BBE", "MBBE"}


class TestTrialSeedStability:
    def test_documented_derivation(self):
        spec = tiny_spec()
        recs = run_experiment(spec, parallel=1)
        first_point_seed = trial_seed(spec.master_seed, 0, salt=0)
        assert any(r.seed == first_point_seed for r in recs)
