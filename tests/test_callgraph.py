"""The interprocedural call-graph layer: resolution, coloring, reachability.

The graph must be *conservative*: unresolved or ambiguous calls drop edges
(never crash, never invent a false positive), cycles terminate, awaited
calls bind to async definitions only, and executor-hop arguments are exempt.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint.callgraph import MAX_NAME_CANDIDATES, CallGraph, build_callgraph
from tools.reprolint.config import DEFAULT_CONFIG
from tools.reprolint.engine import FileContext, ProjectContext, run_paths


def graph_of(tmp_path: Path, *sources: str) -> tuple[CallGraph, ProjectContext]:
    contexts = []
    sink: list = []
    for i, source in enumerate(sources):
        path = tmp_path / f"mod{i}.py"
        path.write_text(source, encoding="utf-8")
        contexts.append(
            FileContext(path, ast.parse(source), source, DEFAULT_CONFIG, sink)
        )
    project = ProjectContext(contexts, DEFAULT_CONFIG)
    return project.callgraph, project


def blocking_roots(graph: CallGraph) -> dict[str, int]:
    """async local name -> number of blocking-reachable findings."""
    out: dict[str, int] = {}
    for root in graph.async_roots():
        local = root.qualname.partition("::")[2]
        out[local] = len(graph.blocking_reachable(root.qualname))
    return out


class TestResolution:
    def test_bare_call_binds_lexically(self, tmp_path: Path) -> None:
        graph, _ = graph_of(
            tmp_path,
            "import time\n"
            "def helper():\n"
            "    time.sleep(1)\n"
            "async def outer():\n"
            "    def helper():\n"
            "        pass\n"
            "    helper()\n"
            "    await other()\n"
            "async def other():\n"
            "    pass\n",
        )
        # outer's call binds to the *nested* helper, not the blocking one
        assert blocking_roots(graph)["outer"] == 0

    def test_unresolved_call_drops_edge_without_crashing(self, tmp_path: Path) -> None:
        graph, _ = graph_of(
            tmp_path,
            "async def handler(plugin):\n"
            "    plugin.execute()\n"  # no definition anywhere: dynamic dispatch
            "    unknown_function()\n"
            "    await noop()\n"
            "async def noop():\n"
            "    pass\n",
        )
        assert blocking_roots(graph)["handler"] == 0

    def test_ambiguous_name_beyond_cap_is_dynamic_dispatch(self, tmp_path: Path) -> None:
        # MAX_NAME_CANDIDATES + 1 same-named methods, one of them blocking:
        # the name is treated as dynamic dispatch and produces no edges.
        classes = []
        for i in range(MAX_NAME_CANDIDATES + 1):
            body = "time.sleep(1)" if i == 0 else "pass"
            classes.append(f"class C{i}:\n    def execute(self):\n        {body}\n")
        graph, _ = graph_of(
            tmp_path,
            "import time\n"
            + "\n".join(classes)
            + "async def handler(obj):\n"
            "    obj.execute()\n"
            "    await noop()\n"
            "async def noop():\n"
            "    pass\n",
        )
        assert blocking_roots(graph)["handler"] == 0

    def test_bounded_attr_fanout_still_resolves(self, tmp_path: Path) -> None:
        graph, _ = graph_of(
            tmp_path,
            "import time\n"
            "class A:\n"
            "    def execute(self):\n"
            "        time.sleep(1)\n"
            "class B:\n"
            "    def execute(self):\n"
            "        pass\n"
            "async def handler(obj):\n"
            "    obj.execute()\n",
        )
        # two candidates (<= cap): conservative over-approximation reaches A
        assert blocking_roots(graph)["handler"] == 1

    def test_self_call_binds_to_own_class_first(self, tmp_path: Path) -> None:
        graph, _ = graph_of(
            tmp_path,
            "import time\n"
            "class Other:\n"
            "    def work(self):\n"
            "        time.sleep(1)\n"
            "class Server:\n"
            "    def work(self):\n"
            "        pass\n"
            "    async def handle(self):\n"
            "        self.work()\n",
        )
        assert blocking_roots(graph)["Server.handle"] == 0

    def test_awaited_call_resolves_async_only(self, tmp_path: Path) -> None:
        graph, _ = graph_of(
            tmp_path,
            "import time\n"
            "class Engine:\n"
            "    def submit(self, x):\n"
            "        time.sleep(1)\n"
            "class Client:\n"
            "    async def submit(self, x):\n"
            "        pass\n"
            "async def caller(client):\n"
            "    await client.submit(1)\n",
        )
        # `await x.submit()` cannot be the sync Engine.submit
        assert blocking_roots(graph)["caller"] == 0

    def test_awaitable_wrapper_args_resolve_async_only(self, tmp_path: Path) -> None:
        graph, _ = graph_of(
            tmp_path,
            "import asyncio\n"
            "import time\n"
            "class Engine:\n"
            "    def submit(self, x):\n"
            "        time.sleep(1)\n"
            "class Client:\n"
            "    async def submit(self, x):\n"
            "        pass\n"
            "async def caller(client):\n"
            "    await asyncio.wait_for(client.submit(1), timeout=5)\n",
        )
        assert blocking_roots(graph)["caller"] == 0


class TestReachability:
    def test_cycles_terminate(self, tmp_path: Path) -> None:
        graph, _ = graph_of(
            tmp_path,
            "import time\n"
            "def ping(n):\n"
            "    pong(n)\n"
            "def pong(n):\n"
            "    ping(n)\n"
            "    time.sleep(1)\n"
            "async def entry():\n"
            "    ping(0)\n",
        )
        hits = {
            local: count for local, count in blocking_roots(graph).items()
        }
        assert hits["entry"] == 1  # found through the cycle, exactly once

    def test_self_recursion_terminates(self, tmp_path: Path) -> None:
        graph, _ = graph_of(
            tmp_path,
            "def rec(n):\n"
            "    rec(n - 1)\n"
            "async def entry():\n"
            "    rec(3)\n",
        )
        assert blocking_roots(graph)["entry"] == 0

    def test_async_callees_are_not_traversed(self, tmp_path: Path) -> None:
        graph, _ = graph_of(
            tmp_path,
            "import time\n"
            "async def inner():\n"
            "    time.sleep(1)\n"
            "async def outer():\n"
            "    await inner()\n",
        )
        hits = blocking_roots(graph)
        # inner is blamed as its own root; outer is clean
        assert hits == {"inner": 1, "outer": 0}

    def test_executor_hop_arguments_are_exempt(self, tmp_path: Path) -> None:
        graph, _ = graph_of(
            tmp_path,
            "import asyncio\n"
            "import functools\n"
            "import time\n"
            "def slow():\n"
            "    time.sleep(1)\n"
            "async def offloads(loop):\n"
            "    await asyncio.to_thread(slow)\n"
            "    await loop.run_in_executor(None, functools.partial(slow))\n",
        )
        assert blocking_roots(graph)["offloads"] == 0

    def test_transitive_hit_anchors_at_entry_call(self, tmp_path: Path) -> None:
        graph, _ = graph_of(
            tmp_path,
            "import time\n"
            "def a():\n"
            "    b()\n"
            "def b():\n"
            "    time.sleep(1)\n"  # line 5
            "async def entry():\n"
            "    a()\n",  # line 7
        )
        root = next(r for r in graph.async_roots())
        (hit,) = graph.blocking_reachable(root.qualname)
        assert hit.line == 7  # diagnostic anchors at the call in the root
        assert hit.site.line == 5  # the primitive's own location is kept
        assert [q.partition("::")[2] for q in hit.chain] == ["entry", "a", "b"]

    def test_cross_file_resolution(self, tmp_path: Path) -> None:
        graph, _ = graph_of(
            tmp_path,
            "import time\n"
            "def unique_blocking_helper():\n"
            "    time.sleep(1)\n",
            "async def entry():\n"
            "    unique_blocking_helper()\n",
        )
        assert blocking_roots(graph)["entry"] == 1


class TestEngineIntegration:
    def test_callgraph_is_lazy_and_cached(self, tmp_path: Path) -> None:
        _, project = graph_of(tmp_path, "async def f():\n    pass\n")
        assert project.callgraph is project.callgraph

    def test_lambda_bodies_are_not_scanned(self, tmp_path: Path) -> None:
        graph, _ = graph_of(
            tmp_path,
            "import time\n"
            "async def entry(xs):\n"
            "    f = lambda: time.sleep(1)\n"
            "    await noop()\n"
            "async def noop():\n"
            "    pass\n",
        )
        # a lambda runs when called, not where written; under-approximate
        assert blocking_roots(graph)["entry"] == 0

    def test_syntax_error_files_do_not_reach_the_graph(self, tmp_path: Path) -> None:
        good = tmp_path / "good.py"
        good.write_text(
            "import time\nasync def f():\n    time.sleep(1)\n", encoding="utf-8"
        )
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        diagnostics, files_checked = run_paths([tmp_path])
        assert files_checked == 2
        codes = sorted(d.code for d in diagnostics)
        assert codes == ["RPL003", "RPL701"]
