"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.embedding.costing import charged_link_uses, compute_cost
from repro.embedding.feasibility import verify_embedding
from repro.network.generator import generate_network
from repro.network.ksp import k_shortest_paths
from repro.network.paths import Path
from repro.network.shortest import bfs_rings, dijkstra
from repro.network.spanning import is_connected_edges, random_spanning_tree_edges
from repro.network.steiner import exact_steiner_tree, mst_steiner_tree
from repro.sfc.generator import generate_dag_sfc, layer_sizes_for
from repro.solvers import MbbeEmbedder, MinvEmbedder, RanvEmbedder

# Shared settings: generators build whole networks, so keep examples modest.
MODERATE = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

nets = st.builds(
    lambda seed, size, conn: generate_network(
        NetworkConfig(
            size=size,
            connectivity=min(conn, size - 1.0),
            n_vnf_types=5,
            deploy_ratio=0.6,
            vnf_capacity=100.0,
            link_capacity=100.0,
        ),
        rng=seed,
    ),
    seed=st.integers(0, 10_000),
    size=st.integers(8, 40),
    conn=st.floats(2.5, 6.0),
)


class TestSpanningProperties:
    @given(n=st.integers(2, 120), seed=st.integers(0, 10_000))
    @MODERATE
    def test_spanning_tree_always_connects(self, n, seed):
        edges = random_spanning_tree_edges(n, seed)
        assert len(edges) == n - 1
        assert is_connected_edges(n, edges)


class TestDijkstraProperties:
    @given(net=nets, seed=st.integers(0, 1000))
    @MODERATE
    def test_triangle_inequality_and_path_cost(self, net, seed):
        g = net.graph
        rng = np.random.default_rng(seed)
        src = int(rng.integers(0, g.num_nodes))
        res = dijkstra(g, src)
        for node in list(res.dist)[:10]:
            path = res.path_to(node)
            assert path is not None
            # Reported distance equals the reconstructed path's cost.
            assert path.cost(g) == pytest.approx(res.cost_to(node))
            path.validate(g)
        # Distances satisfy the edge triangle inequality.
        for link in list(g.links())[:50]:
            du, dv = res.cost_to(link.u), res.cost_to(link.v)
            assert du <= dv + link.price + 1e-9
            assert dv <= du + link.price + 1e-9

    @given(net=nets)
    @MODERATE
    def test_bfs_rings_partition_and_preds(self, net):
        g = net.graph
        r = bfs_rings(g, 0, stop=lambda seen: len(seen) >= g.num_nodes)
        all_nodes = [n for ring in r.rings for n in ring]
        assert len(all_nodes) == len(set(all_nodes))  # rings are disjoint
        for node, preds in r.preds.items():
            d = r.depth_of(node)
            for p in preds:
                assert r.depth_of(p) == d - 1
                assert g.has_link(p, node)


class TestKspProperties:
    @given(net=nets, k=st.integers(1, 6), seed=st.integers(0, 1000))
    @MODERATE
    def test_sorted_distinct_simple(self, net, k, seed):
        g = net.graph
        rng = np.random.default_rng(seed)
        a, b = rng.choice(g.num_nodes, size=2, replace=False)
        paths = k_shortest_paths(g, int(a), int(b), k)
        costs = [p.cost(g) for p in paths]
        assert costs == sorted(costs)
        assert len({p.nodes for p in paths}) == len(paths)
        for p in paths:
            assert p.is_simple()
            p.validate(g)


class TestSteinerProperties:
    @given(net=nets, seed=st.integers(0, 1000))
    @MODERATE
    def test_exact_below_approx_below_sum_of_paths(self, net, seed):
        g = net.graph
        rng = np.random.default_rng(seed)
        nodes = rng.choice(g.num_nodes, size=3, replace=False)
        root, t1, t2 = (int(x) for x in nodes)
        exact = exact_steiner_tree(g, root, [t1, t2])
        approx = mst_steiner_tree(g, root, [t1, t2])
        d = dijkstra(g, root)
        unicast_sum = d.cost_to(t1) + d.cost_to(t2)
        assert exact.cost <= approx.cost + 1e-9
        assert approx.cost <= 2 * exact.cost + 1e-9
        # Multicast never beats the best single path but never exceeds the
        # straightforward unicast combination.
        assert exact.cost <= unicast_sum + 1e-9
        assert exact.cost >= max(d.cost_to(t1), d.cost_to(t2)) - 1e-9


class TestSfcGeneratorProperties:
    @given(size=st.integers(1, 12), seed=st.integers(0, 10_000))
    @MODERATE
    def test_structure_rule_holds(self, size, seed):
        dag = generate_dag_sfc(
            SfcConfig(size=size), n_vnf_types=max(12, size), rng=seed
        )
        assert dag.size == size
        assert tuple(l.phi for l in dag.layers) == layer_sizes_for(size)
        for layer in dag.layers:
            assert layer.has_merger == (layer.phi > 1)


class TestSolverInvariants:
    @given(
        net=nets,
        sfc_seed=st.integers(0, 10_000),
        sfc_size=st.integers(1, 5),
        rng_seed=st.integers(0, 1000),
    )
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_solutions_always_verify_and_order(self, net, sfc_seed, sfc_size, rng_seed):
        dag = generate_dag_sfc(SfcConfig(size=sfc_size), n_vnf_types=5, rng=sfc_seed)
        flow = FlowConfig()
        n = net.num_nodes
        src, dst = 0, n - 1
        results = {}
        for solver in (MbbeEmbedder(), MinvEmbedder(), RanvEmbedder()):
            r = solver.embed(net, dag, src, dst, flow, rng=rng_seed)
            assert r.success, f"{solver.name}: {r.reason}"
            verify_embedding(net, r.embedding, flow)  # referee accepts
            # Cost decomposition is consistent.
            assert r.cost.total == pytest.approx(r.cost.vnf_cost + r.cost.link_cost)
            assert r.cost.vnf_cost > 0
            results[solver.name] = r

        # Multicast accounting: charged uses never exceed naive per-path sums.
        for r in results.values():
            emb = r.embedding
            naive = sum(p.length for p in emb.inter_paths.values()) + sum(
                p.length for p in emb.inner_paths.values()
            )
            assert sum(charged_link_uses(emb).values()) <= naive

    @given(net=nets, seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_cost_scale_invariance_in_z(self, net, seed):
        dag = generate_dag_sfc(SfcConfig(size=4), n_vnf_types=5, rng=seed)
        r1 = MbbeEmbedder().embed(net, dag, 0, net.num_nodes - 1, FlowConfig(size=1.0))
        r2 = MbbeEmbedder().embed(net, dag, 0, net.num_nodes - 1, FlowConfig(size=3.0))
        assert r1.success and r2.success
        assert r2.total_cost == pytest.approx(3.0 * r1.total_cost, rel=1e-6)
