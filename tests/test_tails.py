"""Tests for the shared destination-connection step (solvers/tails.py)."""

import pytest

from repro.config import FlowConfig
from repro.network.cloud import CloudNetwork
from repro.network.graph import Graph
from repro.sfc.builder import DagSfcBuilder
from repro.solvers.common import evaluate_layer_candidate
from repro.solvers.subsolution import SubSolution, SubSolutionTree
from repro.solvers.tails import connect_destination
from repro.network.paths import Path


@pytest.fixture
def diamond():
    """0 -cheap- 1 -cheap- 2 plus detour 0-3-2 (pricier)."""
    g = Graph()
    g.add_link(0, 1, price=1.0, capacity=1.0)
    g.add_link(1, 2, price=1.0, capacity=1.0)
    g.add_link(0, 3, price=2.0, capacity=10.0)
    g.add_link(3, 2, price=2.0, capacity=10.0)
    net = CloudNetwork(g)
    net.deploy(0, 1, price=5.0, capacity=10.0)
    return net


def make_layer1_subsolution(net, root, *, via_cheap: bool):
    """A layer-1 sub-solution placing f(1) on node 0 (trivially)."""
    dag = DagSfcBuilder().single(1).build()
    ss = evaluate_layer_candidate(
        net,
        FlowConfig(rate=1.0),
        root,
        1,
        dag.layer(1),
        assignment={1: 0},
        inter_paths={1: Path.trivial(0)},
        inner_paths={},
    )
    assert ss is not None
    if via_cheap:
        # Pre-consume the cheap corridor 0-1, 1-2 in this chain's counts.
        ss = SubSolution(
            layer=1,
            parent=root,
            end_node=0,
            placements=ss.placements,
            inter_paths=ss.inter_paths,
            inner_paths=ss.inner_paths,
            layer_cost=ss.layer_cost,
            cum_cost=ss.cum_cost,
            vnf_counts=ss.vnf_counts,
            link_counts={(0, 1): 1, (1, 2): 1},
        )
    return dag, ss


class TestConnectDestination:
    def test_shared_path_used_when_free(self, diamond):
        tree = SubSolutionTree(0)
        dag, ss = make_layer1_subsolution(diamond, tree.root, via_cheap=False)
        tree.insert(tree.root, ss)
        best = connect_destination(diamond, FlowConfig(rate=1.0), [ss], dag, 2, tree)
        assert best is not None
        tail = best.inter_paths[(2, 1)]
        assert tail.nodes == (0, 1, 2)  # the cheap global shortest path
        assert best.cum_cost == pytest.approx(ss.cum_cost + 2.0)

    def test_fallback_when_cheap_corridor_saturated(self, diamond):
        """The parent already saturated 0-1/1-2: the shared dest-Dijkstra
        path is rejected and the filtered fallback detours via node 3."""
        tree = SubSolutionTree(0)
        dag, ss = make_layer1_subsolution(diamond, tree.root, via_cheap=True)
        tree.insert(tree.root, ss)
        best = connect_destination(diamond, FlowConfig(rate=1.0), [ss], dag, 2, tree)
        assert best is not None
        tail = best.inter_paths[(2, 1)]
        assert tail.nodes == (0, 3, 2)
        assert best.cum_cost == pytest.approx(ss.cum_cost + 4.0)

    def test_none_when_unreachable(self, diamond):
        diamond.graph.add_node(9)
        tree = SubSolutionTree(0)
        dag, ss = make_layer1_subsolution(diamond, tree.root, via_cheap=False)
        tree.insert(tree.root, ss)
        assert connect_destination(
            diamond, FlowConfig(rate=1.0), [ss], dag, 9, tree
        ) is None

    def test_cheapest_parent_wins(self, diamond):
        tree = SubSolutionTree(0)
        dag, cheap = make_layer1_subsolution(diamond, tree.root, via_cheap=False)
        _, blocked = make_layer1_subsolution(diamond, tree.root, via_cheap=True)
        tree.insert(tree.root, cheap)
        tree.insert(tree.root, blocked)
        best = connect_destination(
            diamond, FlowConfig(rate=1.0), [cheap, blocked], dag, 2, tree
        )
        # cheap parent + 2.0 tail beats blocked parent + 4.0 detour.
        assert best.parent is cheap
