"""Tests for the embedding core: mapping, costing (multicast!), feasibility."""

import pytest

from repro.config import FlowConfig
from repro.embedding.costing import charged_link_uses, compute_cost, vnf_uses
from repro.embedding.feasibility import (
    check_capacity,
    check_completeness,
    verify_embedding,
)
from repro.embedding.mapping import Embedding
from repro.exceptions import IncompleteEmbeddingError, InfeasibleEmbeddingError
from repro.network.cloud import CloudNetwork
from repro.network.paths import Path
from repro.sfc.builder import DagSfcBuilder
from repro.types import MERGER_VNF, Position

from .conftest import build_line_graph


@pytest.fixture
def tiny_instance():
    """Line 0-1-2-3-4 (price 1), DAG f1 | {f2,f3}+merger, s=0, t=4.

    Placements: f1@1, f2@2, f3@3, merger@3. Hand-computable costs.
    """
    g = build_line_graph(5, price=1.0, capacity=100.0)
    net = CloudNetwork(g)
    net.deploy(1, 1, price=10.0, capacity=100.0)
    net.deploy(2, 2, price=20.0, capacity=100.0)
    net.deploy(3, 3, price=30.0, capacity=100.0)
    net.deploy(3, MERGER_VNF, price=5.0, capacity=100.0)
    dag = DagSfcBuilder().single(1).parallel(2, 3).build()
    emb = Embedding(
        dag=dag,
        source=0,
        dest=4,
        placements={
            Position(1, 1): 1,
            Position(2, 1): 2,
            Position(2, 2): 3,
            Position(2, 3): 3,  # merger
        },
        inter_paths={
            Position(1, 1): Path((0, 1)),
            Position(2, 1): Path((1, 2)),
            Position(2, 2): Path((1, 2, 3)),
            Position(3, 1): Path((3, 4)),  # tail to destination dummy
        },
        inner_paths={
            Position(2, 1): Path((2, 3)),
            Position(2, 2): Path.trivial(3),
        },
    )
    return net, dag, emb


class TestMapping:
    def test_node_of_real_and_dummy(self, tiny_instance):
        net, dag, emb = tiny_instance
        assert emb.node_of(Position(1, 1)) == 1
        assert emb.node_of(Position(0, 1)) == 0  # source dummy
        assert emb.node_of(Position(3, 1)) == 4  # dest dummy

    def test_node_of_missing_raises(self, tiny_instance):
        net, dag, emb = tiny_instance
        with pytest.raises(IncompleteEmbeddingError):
            emb.node_of(Position(1, 2))

    def test_end_node(self, tiny_instance):
        net, dag, emb = tiny_instance
        assert emb.end_node(1) == 1
        assert emb.end_node(2) == 3  # merger node

    def test_total_hops(self, tiny_instance):
        net, dag, emb = tiny_instance
        assert emb.total_hops() == 1 + 1 + 2 + 1 + 1 + 0

    def test_nodes_used(self, tiny_instance):
        net, dag, emb = tiny_instance
        assert emb.nodes_used() == frozenset({0, 1, 2, 3, 4})

    def test_describe_mentions_layers(self, tiny_instance):
        net, dag, emb = tiny_instance
        text = emb.describe()
        assert "L1" in text and "L2" in text


class TestCosting:
    def test_vnf_uses(self, tiny_instance):
        net, dag, emb = tiny_instance
        alpha = vnf_uses(emb)
        assert alpha == {(1, 1): 1, (2, 2): 1, (3, 3): 1, (3, MERGER_VNF): 1}

    def test_multicast_shares_interlayer_link(self, tiny_instance):
        net, dag, emb = tiny_instance
        alpha = charged_link_uses(emb)
        # Link 1-2 is used by BOTH layer-2 inter paths but charged once.
        assert alpha[(1, 2)] == 1
        # Link 2-3: once by the inter path into f3, once by the inner path of f2.
        assert alpha[(2, 3)] == 2
        assert alpha[(0, 1)] == 1
        assert alpha[(3, 4)] == 1

    def test_total_cost_hand_computed(self, tiny_instance):
        net, dag, emb = tiny_instance
        cost = compute_cost(net, emb, FlowConfig(size=1.0, rate=1.0))
        assert cost.vnf_cost == pytest.approx(10 + 20 + 30 + 5)
        assert cost.link_cost == pytest.approx(1 + 1 + 2 + 1)
        assert cost.total == pytest.approx(70.0)

    def test_cost_scales_with_flow_size(self, tiny_instance):
        net, dag, emb = tiny_instance
        cost = compute_cost(net, emb, FlowConfig(size=2.5, rate=1.0))
        assert cost.total == pytest.approx(70.0 * 2.5)

    def test_same_node_placement_is_free(self, tiny_instance):
        net, dag, emb = tiny_instance
        # Inner path of f3 is trivial (f3 and merger share node 3): no link cost.
        alpha = charged_link_uses(emb)
        assert sum(alpha.values()) == 5


class TestCompleteness:
    def test_valid_embedding_passes(self, tiny_instance):
        net, dag, emb = tiny_instance
        check_completeness(net, emb)

    def test_missing_placement(self, tiny_instance):
        net, dag, emb = tiny_instance
        placements = dict(emb.placements)
        del placements[Position(2, 2)]
        bad = Embedding(dag, 0, 4, placements, emb.inter_paths, emb.inner_paths)
        with pytest.raises(IncompleteEmbeddingError):
            check_completeness(net, bad)

    def test_wrong_host_category(self, tiny_instance):
        net, dag, emb = tiny_instance
        placements = dict(emb.placements)
        placements[Position(1, 1)] = 2  # node 2 hosts f2, not f1
        bad = Embedding(dag, 0, 4, placements, emb.inter_paths, emb.inner_paths)
        with pytest.raises(IncompleteEmbeddingError):
            check_completeness(net, bad)

    def test_missing_inter_path(self, tiny_instance):
        net, dag, emb = tiny_instance
        inter = dict(emb.inter_paths)
        del inter[Position(2, 1)]
        bad = Embedding(dag, 0, 4, emb.placements, inter, emb.inner_paths)
        with pytest.raises(IncompleteEmbeddingError):
            check_completeness(net, bad)

    def test_path_endpoint_mismatch(self, tiny_instance):
        net, dag, emb = tiny_instance
        inter = dict(emb.inter_paths)
        inter[Position(2, 1)] = Path((1, 2, 3))  # should end at node 2
        bad = Embedding(dag, 0, 4, emb.placements, inter, emb.inner_paths)
        with pytest.raises(IncompleteEmbeddingError):
            check_completeness(net, bad)

    def test_path_over_missing_link(self, tiny_instance):
        net, dag, emb = tiny_instance
        inter = dict(emb.inter_paths)
        inter[Position(2, 1)] = Path((1, 3, 2))  # 1-3 is not a link
        bad = Embedding(dag, 0, 4, emb.placements, inter, emb.inner_paths)
        with pytest.raises(Exception):
            check_completeness(net, bad)

    def test_stray_path_rejected(self, tiny_instance):
        net, dag, emb = tiny_instance
        inner = dict(emb.inner_paths)
        inner[Position(1, 1)] = Path.trivial(1)  # layer 1 has no inner paths
        bad = Embedding(dag, 0, 4, emb.placements, emb.inter_paths, inner)
        with pytest.raises(IncompleteEmbeddingError):
            check_completeness(net, bad)

    def test_missing_source_node(self, tiny_instance):
        net, dag, emb = tiny_instance
        bad = Embedding(dag, 77, 4, emb.placements, emb.inter_paths, emb.inner_paths)
        with pytest.raises(IncompleteEmbeddingError):
            check_completeness(net, bad)


class TestCapacity:
    def test_slack_capacities_pass(self, tiny_instance):
        net, dag, emb = tiny_instance
        check_capacity(net, emb, FlowConfig(size=1.0, rate=1.0))

    def test_link_overload_detected(self, tiny_instance):
        net, dag, emb = tiny_instance
        # Link 2-3 carries 2 charged uses; rate 60 -> demand 120 > capacity 100.
        with pytest.raises(InfeasibleEmbeddingError):
            check_capacity(net, emb, FlowConfig(size=1.0, rate=60.0))

    def test_multicast_consumes_once(self, tiny_instance):
        net, dag, emb = tiny_instance
        # Link 1-2 is shared by the layer-2 multicast: demand is 1*rate, so
        # rate 90 still fits capacity 100 on that link (2-3 breaks first).
        alpha = charged_link_uses(emb)
        assert alpha[(1, 2)] * 90.0 <= 100.0

    def test_vnf_overload_detected(self, tiny_instance):
        net, dag, emb = tiny_instance
        with pytest.raises(InfeasibleEmbeddingError):
            check_capacity(net, emb, FlowConfig(size=1.0, rate=150.0))

    def test_verify_runs_both(self, tiny_instance):
        net, dag, emb = tiny_instance
        verify_embedding(net, emb, FlowConfig())
