"""Property tests for the extension modules: serialization, routing,
batch orderings, DOT output, and the cost attribution identity."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.embedding.costing import compute_cost
from repro.embedding.feasibility import verify_embedding
from repro.embedding.inspect import attribute_cost
from repro.network.generator import generate_network
from repro.serialize import (
    dag_from_dict,
    dag_to_dict,
    embedding_from_dict,
    embedding_to_dict,
    network_from_dict,
    network_to_dict,
)
from repro.sfc.generator import generate_dag_sfc, generate_random_structure_dag
from repro.solvers import MbbeEmbedder, MinvEmbedder
from repro.viz.dot import dag_to_dot, embedding_to_dot

MODERATE = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

nets = st.builds(
    lambda seed, size: generate_network(
        NetworkConfig(size=size, connectivity=3.5, n_vnf_types=6, deploy_ratio=0.6),
        rng=seed,
    ),
    seed=st.integers(0, 3000),
    size=st.integers(10, 30),
)


class TestSerializationProperties:
    @given(net=nets)
    @MODERATE
    def test_network_roundtrip_is_identity(self, net):
        clone = network_from_dict(network_to_dict(net))
        assert set(clone.graph.nodes()) == set(net.graph.nodes())
        for link in net.graph.links():
            c = clone.graph.link(link.u, link.v)
            assert c.price == link.price and c.capacity == link.capacity
        for inst in net.deployments.all_instances():
            c = clone.instance(inst.node, inst.vnf_type)
            assert c.price == inst.price and c.capacity == inst.capacity

    @given(size=st.integers(1, 10), seed=st.integers(0, 3000))
    @MODERATE
    def test_dag_roundtrip_is_identity(self, size, seed):
        dag = generate_random_structure_dag(size, 12, rng=seed)
        assert dag_from_dict(dag_to_dict(dag)) == dag

    @given(net=nets, seed=st.integers(0, 3000))
    @MODERATE
    def test_embedding_roundtrip_preserves_cost(self, net, seed):
        dag = generate_dag_sfc(SfcConfig(size=3), n_vnf_types=6, rng=seed)
        r = MinvEmbedder().embed(net, dag, 0, net.num_nodes - 1, FlowConfig(), rng=1)
        if not r.success:
            return
        clone = embedding_from_dict(embedding_to_dict(r.embedding))
        verify_embedding(net, clone, FlowConfig())
        assert compute_cost(net, clone, FlowConfig()).total == pytest.approx(
            r.total_cost
        )


class TestAttributionProperties:
    @given(net=nets, seed=st.integers(0, 3000))
    @MODERATE
    def test_layer_attribution_sums_to_total(self, net, seed):
        dag = generate_dag_sfc(SfcConfig(size=4), n_vnf_types=6, rng=seed)
        r = MbbeEmbedder().embed(net, dag, 0, net.num_nodes - 1, FlowConfig())
        if not r.success:
            return
        attr = attribute_cost(net, r.embedding, FlowConfig())
        assert sum(lc.total for lc in attr.layers) == pytest.approx(attr.total)
        assert attr.total == pytest.approx(r.total_cost)
        assert all(lc.total >= -1e-9 for lc in attr.layers)


class TestDotProperties:
    @given(size=st.integers(1, 9), seed=st.integers(0, 3000))
    @MODERATE
    def test_dag_dot_always_balanced(self, size, seed):
        dag = generate_random_structure_dag(size, 12, rng=seed)
        dot = dag_to_dot(dag)
        assert dot.count("{") == dot.count("}")
        assert dot.count("subgraph") == dag.omega

    @given(net=nets, seed=st.integers(0, 3000))
    @MODERATE
    def test_embedding_dot_arrow_counts(self, net, seed):
        dag = generate_dag_sfc(SfcConfig(size=3), n_vnf_types=6, rng=seed)
        r = MbbeEmbedder().embed(net, dag, 0, net.num_nodes - 1, FlowConfig())
        if not r.success:
            return
        dot = embedding_to_dot(net, r.embedding)
        assert dot.count("#C23B21") == sum(
            p.length for p in r.embedding.inter_paths.values()
        )
        assert dot.count("{") == dot.count("}")


class TestOnlineConservation:
    @given(net=nets, seed=st.integers(0, 3000))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_submit_release_restores_state(self, net, seed):
        """Any accepted request, once released, leaves zero residue."""
        from repro.sim.online import OnlineSimulator, SfcRequest

        dag = generate_dag_sfc(SfcConfig(size=3), n_vnf_types=6, rng=seed)
        sim = OnlineSimulator(net, MbbeEmbedder())
        rng = np.random.default_rng(seed)
        src, dst = (int(v) for v in rng.choice(net.num_nodes, size=2, replace=False))
        r = sim.submit(SfcRequest(1, dag, src, dst, FlowConfig()))
        if not r.success:
            return
        sim.release(1)
        assert dict(sim.state.used_links()) == {}
        assert dict(sim.state.used_vnfs()) == {}
