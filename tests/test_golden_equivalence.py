"""Golden equivalence: the solver fast path must match the committed fixture.

The fixture (``tests/golden/solver_equivalence.json``) was captured from the
tree *before* the copy-on-write/caching optimisations landed. Every cell of
:data:`repro.sim.goldens.GOLDEN_GRID` is re-run here and compared through a
JSON round-trip, so a placement, path or cost that moves by a single bit
fails the test. The benchmark harness (``benchmarks/solver_core.py``) draws
its seeds from the same grid, which means every benchmarked seed is
equivalence-checked on every test run.
"""

import json
from pathlib import Path

import pytest

from repro.sim.goldens import BENCH_SCENARIO_ID, GOLDEN_GRID, GoldenScenario, capture, run_golden_cell

FIXTURE = Path(__file__).parent / "golden" / "solver_equivalence.json"


@pytest.fixture(scope="module")
def fixture_doc() -> dict:
    with open(FIXTURE, encoding="utf-8") as fh:
        return json.load(fh)


def _cases() -> list[tuple[GoldenScenario, int]]:
    return [(cell, seed) for cell in GOLDEN_GRID for seed in cell.seeds]


@pytest.mark.parametrize(
    "cell,seed", _cases(), ids=[f"{c.scenario_id}-{s}" for c, s in _cases()]
)
def test_run_matches_fixture(cell: GoldenScenario, seed: int, fixture_doc: dict) -> None:
    got = json.loads(json.dumps(run_golden_cell(cell, seed)))
    want = fixture_doc["scenarios"][cell.scenario_id]["runs"][str(seed)]
    assert got == want


def test_fixture_covers_whole_grid(fixture_doc: dict) -> None:
    assert set(fixture_doc["scenarios"]) == {c.scenario_id for c in GOLDEN_GRID}
    for cell in GOLDEN_GRID:
        entry = fixture_doc["scenarios"][cell.scenario_id]
        assert entry["solvers"] == [s.series for s in cell.solvers]
        assert set(entry["runs"]) == {str(s) for s in cell.seeds}


def test_bench_scenario_is_in_grid() -> None:
    assert any(c.scenario_id == BENCH_SCENARIO_ID for c in GOLDEN_GRID)


def test_grid_exercises_every_solver_family() -> None:
    names = {spec.name for cell in GOLDEN_GRID for spec in cell.solvers}
    assert {"MBBE", "BBE", "RANV", "MINV"} <= names


def test_capture_round_trips_current_tree(fixture_doc: dict) -> None:
    # capture() must regenerate the exact committed document (modulo the
    # JSON round-trip) — this is what ``python -m repro.sim.goldens`` writes.
    doc = json.loads(json.dumps(capture()))
    assert doc == fixture_doc
