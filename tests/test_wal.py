"""The durability subsystem: WAL codec, crash recovery, standby promotion.

Three layers of guarantees, tested bottom-up:

* the log itself — fingerprint-chained records, torn-tail tolerance,
  sync-before-close discipline (an unsynced record was never promised, a
  synced one must survive);
* recovery — ``EmbeddingEngine.restore`` = latest snapshot + deterministic
  log replay, asserted to reproduce the *exact* ledger fingerprint of the
  engine that wrote the log (the hypothesis property checks every prefix);
* fail-over — a :class:`StandbyEngine` tailing the primary's log promotes
  into an engine whose next batch of decisions is identical to what a
  never-crashed primary would have produced.
"""

import asyncio
import importlib
import json
import sys
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.engine import (
    DEFAULT_NETWORK_ID,
    EmbeddingEngine,
    EmbeddingRequest,
    RebalanceConfig,
    Rebalancer,
    ShardRouter,
    StandbyEngine,
    WalWriter,
    read_wal,
    shard_wal_path,
    state_store,
)
from repro.exceptions import ConfigurationError, ServiceError, WalError
from repro.faults.model import FaultAction, FaultEvent, FaultTarget
from repro.network.cloud import CloudNetwork
from repro.network.generator import generate_network
from repro.service import EmbeddingServer, ServiceClient, ServiceConfig
from repro.sfc.builder import DagSfcBuilder
from repro.sfc.generator import generate_dag_sfc
from repro.utils.rng import as_generator
from repro.wal.log import WalTail, chain_hash
from repro.wal.records import ledger_fingerprint

from .conftest import build_line_graph


def run(coro):
    return asyncio.run(coro)


def engine_network(seed: int = 17) -> CloudNetwork:
    cfg = NetworkConfig(
        size=40, connectivity=4.0, n_vnf_types=6, deploy_ratio=0.5,
        vnf_capacity=4.0, link_capacity=4.0,
    )
    return generate_network(cfg, rng=seed)


def tight_network() -> CloudNetwork:
    """0-1-2 line where one unit-rate request saturates everything."""
    net = CloudNetwork(build_line_graph(3, price=1.0, capacity=1.0))
    net.deploy(1, 1, price=5.0, capacity=1.0)
    return net


def make_requests(network: CloudNetwork, n: int, *, seed: int = 11) -> list[EmbeddingRequest]:
    gen = as_generator(seed)
    out = []
    for rid in range(n):
        dag = generate_dag_sfc(SfcConfig(size=3), 6, rng=gen)
        src, dst = (int(v) for v in gen.choice(network.num_nodes, size=2, replace=False))
        out.append(
            EmbeddingRequest(
                request_id=rid, dag=dag, source=src, dest=dst,
                flow=FlowConfig(rate=1.0), seed=int(gen.integers(2**31)),
                arrival_index=rid,
            )
        )
    return out


def line_request(rid: int, *, rate: float = 1.0, seed: int | None = None) -> EmbeddingRequest:
    dag = DagSfcBuilder().single(1).build()
    return EmbeddingRequest(
        request_id=rid, dag=dag, source=0, dest=2, flow=FlowConfig(rate=rate), seed=seed
    )


def wal_engine(network: CloudNetwork, path, *, seed: int = 5) -> EmbeddingEngine:
    engine = EmbeddingEngine(network, "MBBE", seed=seed)
    engine.attach_wal_file(str(path))
    return engine


class TestWalLog:
    def test_roundtrip_with_verified_chain(self, tmp_path):
        path = str(tmp_path / "shard.wal")
        writer = WalWriter(path, header={"kind": "test-header", "version": 1})
        writer.append_record("commit", {"request_id": 1, "cost": 2.5})
        writer.append_record("release", {"request_id": 1})
        assert writer.pending_count == 2
        writer.sync()
        assert writer.pending_count == 0
        writer.close()

        scan = read_wal(path)
        assert not scan.torn
        assert [r.type for r in scan.records] == ["header", "commit", "release"]
        assert [r.seq for r in scan.records] == [0, 1, 2]
        # The chain is a running fingerprint over the canonical bodies.
        prev = ""
        for record in scan.records:
            assert record.chain == chain_hash(prev, record.body_json())
            prev = record.chain

    def test_append_is_buffered_until_sync(self, tmp_path):
        path = str(tmp_path / "shard.wal")
        writer = WalWriter(path, header={"kind": "test-header"})
        writer.append_record("commit", {"request_id": 7})
        # Nothing past the header reaches disk before an explicit sync().
        assert read_wal(path).last_seq == 0
        writer.sync()
        assert read_wal(path).last_seq == 1
        writer.close()

    def test_close_refuses_to_drop_pending_records(self, tmp_path):
        writer = WalWriter(str(tmp_path / "shard.wal"), header={"kind": "test-header"})
        writer.append_record("commit", {"request_id": 1})
        with pytest.raises(WalError, match="sync"):
            writer.close()
        writer.sync()
        writer.close()
        with pytest.raises(WalError, match="closed"):
            writer.append_record("commit", {"request_id": 2})

    def test_torn_tail_is_tolerated_and_truncated_on_resume(self, tmp_path):
        path = str(tmp_path / "shard.wal")
        writer = WalWriter(path, header={"kind": "test-header"})
        writer.append_record("commit", {"request_id": 1})
        writer.sync()
        writer.close()
        with open(path, "ab") as fh:
            fh.write(b'{"chain":"feed', )  # a crash mid-write leaves half a line

        scan = read_wal(path)
        assert scan.torn
        assert scan.last_seq == 1

        # Resuming a writer truncates the torn tail and continues the chain.
        resumed = WalWriter(path)
        assert resumed.seq == 1
        resumed.append_record("release", {"request_id": 1})
        resumed.sync()
        resumed.close()
        scan = read_wal(path)
        assert not scan.torn
        assert [r.type for r in scan.records] == ["header", "commit", "release"]

    def test_corruption_before_the_tail_raises(self, tmp_path):
        path = str(tmp_path / "shard.wal")
        writer = WalWriter(path, header={"kind": "test-header"})
        writer.append_record("commit", {"request_id": 1})
        writer.append_record("release", {"request_id": 1})
        writer.sync()
        writer.close()
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[1] = b'{"garbage": true}\n'
        with open(path, "wb") as fh:
            fh.writelines(lines)
        with pytest.raises(WalError, match="seq 1"):
            read_wal(path)

    def test_tampered_chain_raises(self, tmp_path):
        path = str(tmp_path / "shard.wal")
        writer = WalWriter(path, header={"kind": "test-header"})
        writer.append_record("commit", {"request_id": 1, "cost": 3.0})
        writer.sync()
        writer.close()
        lines = open(path, "rb").read().splitlines(keepends=True)
        doc = json.loads(lines[1])
        doc["payload"]["cost"] = 30.0  # rewrite history, keep the old chain
        lines[1] = (json.dumps(doc, sort_keys=True).encode() + b"\n")
        lines[1:] = [lines[1]]
        with open(path, "wb") as fh:
            fh.writelines(lines)
        with pytest.raises(WalError):
            read_wal(path, allow_torn_tail=False)

    def test_tail_consumes_incrementally(self, tmp_path):
        path = str(tmp_path / "shard.wal")
        writer = WalWriter(path, header={"kind": "test-header"})
        tail = WalTail(path)
        assert [r.type for r in tail.poll()] == ["header"]
        writer.append_record("commit", {"request_id": 1})
        assert tail.poll() == []  # unsynced records are invisible
        writer.sync()
        batch = tail.poll()
        assert [r.seq for r in batch] == [1]
        assert tail.poll() == []
        writer.append_record("release", {"request_id": 1})
        writer.sync()
        writer.close()
        assert [r.seq for r in tail.poll()] == [2]


class TestEngineRecovery:
    def drive(self, engine: EmbeddingEngine, requests, *, release=(), fault=False):
        for request in requests:
            engine.submit(request, rng=request.seed)
        for rid in release:
            if engine.is_active(rid):
                engine.release(rid)
        if fault:
            engine.apply_fault(
                FaultEvent(time=0, action=FaultAction.FAIL, target=FaultTarget.node(3)),
                auto_seed=True,
            )

    def test_wal_only_restore_reproduces_the_fingerprint(self, tmp_path):
        network = engine_network()
        path = tmp_path / "shard.wal"
        engine = wal_engine(network, path)
        self.drive(engine, make_requests(network, 10), release=(0, 3), fault=True)
        engine.detach_wal()

        restored, leftover = EmbeddingEngine.restore(
            network, "MBBE", None, seed=5, wal_path=str(path)
        )
        assert leftover == {}
        assert restored.ledger_fingerprint() == engine.ledger_fingerprint()
        assert restored.counters == engine.counters
        assert restored.active_count() == engine.active_count()
        assert restored.wal_applied_seq == read_wal(str(path)).last_seq

    def test_snapshot_plus_wal_suffix_restore(self, tmp_path):
        network = engine_network()
        path = tmp_path / "shard.wal"
        snap = tmp_path / "snap.json"
        engine = wal_engine(network, path)
        requests = make_requests(network, 12)
        self.drive(engine, requests[:6])
        engine.save_snapshot(str(snap))  # embeds the synced wal position
        self.drive(engine, requests[6:], release=(1,), fault=True)
        engine.detach_wal()

        restored, _ = EmbeddingEngine.restore(
            network, "MBBE", str(snap), seed=5, wal_path=str(path)
        )
        assert restored.ledger_fingerprint() == engine.ledger_fingerprint()
        assert restored.counters == engine.counters

    def test_restored_engine_continues_decision_identically(self, tmp_path):
        network = engine_network()
        path = tmp_path / "shard.wal"
        requests = make_requests(network, 16)
        engine = wal_engine(network, path)
        twin = EmbeddingEngine(network, "MBBE", seed=5)
        self.drive(engine, requests[:8], release=(2,))
        self.drive(twin, requests[:8], release=(2,))
        engine.detach_wal()

        restored, _ = EmbeddingEngine.restore(
            network, "MBBE", None, seed=5, wal_path=str(path)
        )
        for request in requests[8:]:
            ours = restored.submit(request, rng=request.seed)
            theirs = twin.submit(request, rng=request.seed)
            assert ours.success == theirs.success
            assert ours.total_cost == pytest.approx(theirs.total_cost)
        assert restored.ledger_fingerprint() == twin.ledger_fingerprint()

    def test_attach_rejects_position_mismatch(self, tmp_path):
        network = engine_network()
        path = tmp_path / "shard.wal"
        engine = wal_engine(network, path)
        self.drive(engine, make_requests(network, 3))
        engine.detach_wal()
        # A fresh engine reflects seq 0; the log is further along.
        fresh = EmbeddingEngine(network, "MBBE", seed=5)
        with pytest.raises(WalError, match="restore"):
            fresh.attach_wal_file(str(path))

    def test_attach_rejects_foreign_network(self, tmp_path):
        path = tmp_path / "shard.wal"
        engine = wal_engine(engine_network(), path)
        engine.detach_wal()
        other = EmbeddingEngine(engine_network(seed=99), "MBBE", seed=5)
        with pytest.raises((WalError, ConfigurationError)):
            other.attach_wal_file(str(path))

    def test_golden_engine_state_is_identical_without_wal(self, tmp_path):
        """WAL on vs off changes no decision, no counter, no ledger byte."""
        network = engine_network()
        requests = make_requests(network, 10)
        plain = EmbeddingEngine(network, "MBBE", seed=5)
        logged = wal_engine(network, tmp_path / "shard.wal")
        for request in requests:
            a = plain.submit(request, rng=request.seed)
            b = logged.submit(request, rng=request.seed)
            assert (a.success, a.total_cost) == (b.success, b.total_cost)
        logged.detach_wal()
        assert plain.counters == logged.counters
        assert state_store.snapshot_to_dict(
            plain.ledger, counters={}
        ) == state_store.snapshot_to_dict(logged.ledger, counters={})


# One bounded event alphabet for the prefix property: submit ids are drawn
# small so releases/faults actually interact with live reservations, and
# rebalance cycles interleave migrations into the logged stream.
_EVENTS = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.integers(0, 11)),
        st.tuples(st.just("release"), st.integers(0, 11)),
        st.tuples(st.just("fault"), st.integers(0, 4)),
        st.tuples(st.just("recover"), st.integers(0, 4)),
        st.tuples(st.just("rebalance"), st.just(0)),
    ),
    max_size=14,
)

#: eager rebalance knobs for the property: low threshold, no cooldown, so
#: migrations fire whenever the random interleaving fragments the substrate.
_PROPERTY_REBALANCE = RebalanceConfig(
    max_moves=2, candidates=3, min_gain=0.001, cooldown=0
)


class TestReplayPrefixProperty:
    """Satellite 3: every prefix of the log restores the exact state."""

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(events=_EVENTS, cut=st.integers(0, 14))
    def test_any_prefix_replay_matches_a_from_scratch_engine(
        self, tmp_path_factory, events, cut
    ):
        tmp_path = tmp_path_factory.mktemp("wal-prefix")
        network = engine_network(seed=23)
        requests = {rid: request for rid, request in enumerate(make_requests(network, 12))}
        path = str(tmp_path / "shard.wal")
        logged = wal_engine(network, path, seed=9)
        shadow = EmbeddingEngine(network, "MBBE", seed=9)
        cut = min(cut, len(events))
        # One rebalancer per engine, identically configured: the logged and
        # the shadow engine then share cooldown state and plan seeds, so
        # their migration decisions (and hence their logs) are identical.
        rebalancers: dict[int, Rebalancer] = {}

        def apply(engine: EmbeddingEngine, event) -> None:
            kind, arg = event
            if kind == "submit":
                if not engine.is_active(arg):
                    engine.submit(requests[arg], rng=requests[arg].seed)
            elif kind == "release":
                if engine.is_active(arg):
                    engine.release(arg)
            elif kind == "rebalance":
                rebalancers.setdefault(
                    id(engine), Rebalancer(engine, _PROPERTY_REBALANCE)
                ).run_cycle()
            else:
                action = FaultAction.FAIL if kind == "fault" else FaultAction.RECOVER
                engine.apply_fault(
                    FaultEvent(time=0, action=action, target=FaultTarget.node(arg)),
                    auto_seed=True,
                )

        for event in events[:cut]:
            apply(logged, event)
            apply(shadow, event)
        logged.wal.sync()
        cut_seq = logged.wal.seq
        prefix_fingerprint = logged.ledger_fingerprint()
        for event in events[cut:]:
            apply(logged, event)
        logged.detach_wal()

        # Replaying the *whole* log reproduces the final state...
        full, _ = EmbeddingEngine.restore(network, "MBBE", None, seed=9, wal_path=path)
        assert full.ledger_fingerprint() == logged.ledger_fingerprint()
        assert full.counters == logged.counters

        # ...and replaying exactly the records written by the cut reproduces
        # the prefix state the shadow engine reached running the same events.
        scan = read_wal(path)
        partial = EmbeddingEngine(network, "MBBE", seed=9)
        for record in scan.records[1:]:
            if record.seq > cut_seq:
                break
            partial.apply_wal_record(record)
        assert partial.ledger_fingerprint() == prefix_fingerprint
        assert shadow.ledger_fingerprint() == prefix_fingerprint


class TestStandbyPromotion:
    def test_standby_tails_and_promotes_decision_identically(self, tmp_path):
        network = engine_network()
        path = str(tmp_path / "shard.wal")
        requests = make_requests(network, 18)
        primary = wal_engine(network, path)
        twin = EmbeddingEngine(network, "MBBE", seed=5)

        standby = StandbyEngine(network, "MBBE", path, seed=5)
        for request in requests[:9]:
            primary.submit(request, rng=request.seed)
            twin.submit(request, rng=request.seed)
        for rid in (0, 4):
            if primary.is_active(rid):
                primary.release(rid)
                twin.release(rid)
        event = FaultEvent(time=0, action=FaultAction.FAIL, target=FaultTarget.node(7))
        primary.apply_fault(event, auto_seed=True)
        twin.apply_fault(event, auto_seed=True)
        primary.wal.sync()
        standby.poll()
        assert standby.ledger_fingerprint() == primary.ledger_fingerprint()

        # The primary "dies": nobody calls detach, the standby takes over the
        # same log file and must continue exactly like the never-crashed twin.
        primary.wal.close()
        promoted = standby.promote()
        assert promoted.wal is not None
        for request in requests[9:]:
            ours = promoted.submit(request, rng=request.seed)
            theirs = twin.submit(request, rng=request.seed)
            assert ours.success == theirs.success
            assert ours.total_cost == pytest.approx(theirs.total_cost)
        assert promoted.ledger_fingerprint() == twin.ledger_fingerprint()
        assert promoted.counters == twin.counters
        promoted.detach_wal()

        # The promoted engine's log is itself recoverable end to end.
        restored, _ = EmbeddingEngine.restore(network, "MBBE", None, seed=5, wal_path=path)
        assert restored.ledger_fingerprint() == twin.ledger_fingerprint()

    def test_standby_rejects_double_promotion_and_post_promote_poll(self, tmp_path):
        network = tight_network()
        path = str(tmp_path / "shard.wal")
        primary = wal_engine(network, path)
        standby = StandbyEngine(network, "MBBE", path, seed=5)
        primary.submit(line_request(1), rng=0)
        primary.detach_wal()
        standby.promote(attach_writer=False)
        with pytest.raises(WalError, match="promoted"):
            standby.promote()
        with pytest.raises(WalError, match="promoted"):
            standby.poll()

    def test_router_promote_swaps_the_shard(self, tmp_path):
        network = tight_network()
        path = str(tmp_path / "net0.wal")
        router = ShardRouter({"net0": EmbeddingEngine(network, "MBBE", seed=5)})
        router.get("net0").attach_wal_file(path, network_id="net0")
        standby = StandbyEngine(network, "MBBE", path, seed=5)
        router.attach_standby("net0", standby)
        assert router.has_standby("net0")
        router.get("net0").submit(line_request(1), rng=0)
        router.get("net0").wal.sync()

        promoted = router.promote("net0")
        assert router.get("net0") is promoted
        assert not router.has_standby("net0")
        assert promoted.is_active(1)
        assert promoted.wal is not None
        promoted.detach_wal()

    def test_router_promote_without_standby_raises(self):
        router = ShardRouter({"net0": EmbeddingEngine(tight_network(), "MBBE")})
        with pytest.raises(ConfigurationError, match="standby"):
            router.promote("net0")


def make_workload(network, n: int, *, seed: int = 11):
    gen = as_generator(seed)
    out = []
    for rid in range(n):
        dag = generate_dag_sfc(SfcConfig(size=3), 6, rng=gen)
        src, dst = (int(v) for v in gen.choice(network.num_nodes, size=2, replace=False))
        out.append((rid, dag, src, dst, 1.0, int(gen.integers(2**31))))
    return out


class TestServiceDurability:
    def test_served_decisions_are_recoverable_from_the_wal(self, tmp_path):
        network = engine_network()
        workload = make_workload(network, 20)
        wal_dir = str(tmp_path / "wal")
        config = ServiceConfig(batch_size=4, workers=0, wal_dir=wal_dir)

        async def drive():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    outcomes = await asyncio.gather(
                        *(
                            client.submit(rid, dag, src, dst, rate=rate, seed=s)
                            for rid, dag, src, dst, rate, s in workload
                        )
                    )
                    accepted = [o.request_id for o in outcomes if o.accepted]
                    await client.release(accepted[0])
                    stats = await client.stats()
                fingerprint = server.router.default.ledger_fingerprint()
            return outcomes, stats, fingerprint, accepted

        outcomes, stats, fingerprint, accepted = run(drive())
        assert accepted
        shard_stats = stats["shards"][DEFAULT_NETWORK_ID]
        assert shard_stats["ledger_fingerprint"] == fingerprint
        assert shard_stats["wal"] is not None

        # Offline recovery from the log alone reproduces the served state:
        # every acknowledged accept is active, the released one is not.
        path = shard_wal_path(wal_dir, DEFAULT_NETWORK_ID)
        restored, _ = EmbeddingEngine.restore(
            network, config.solver, None, seed=config.seed, wal_path=path
        )
        assert restored.ledger_fingerprint() == fingerprint
        assert not restored.is_active(accepted[0])
        for rid in accepted[1:]:
            assert restored.is_active(rid)

    def test_client_promote_fails_over_mid_session(self, tmp_path):
        network = engine_network()
        workload = make_workload(network, 24)
        wal_dir = str(tmp_path / "wal")
        config = ServiceConfig(
            batch_size=4, workers=0, wal_dir=wal_dir, standby=True, standby_poll=0.01
        )

        async def drive():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    first = await asyncio.gather(
                        *(
                            client.submit(rid, dag, src, dst, rate=rate, seed=s)
                            for rid, dag, src, dst, rate, s in workload[:12]
                        )
                    )
                    reply = await client.promote()
                    second = await asyncio.gather(
                        *(
                            client.submit(rid, dag, src, dst, rate=rate, seed=s)
                            for rid, dag, src, dst, rate, s in workload[12:]
                        )
                    )
                    stats = await client.stats()
            return first, reply, second, stats

        first, reply, second, stats = run(drive())
        assert reply["type"] == "promoted"
        assert reply["active"] == sum(1 for o in first if o.accepted)
        decisions = {o.request_id: o for o in [*first, *second]}

        # The whole session — across the fail-over — must match one offline
        # engine fed the same requests in the server's decision order.
        offline = EmbeddingEngine(network, config.solver, seed=config.seed)
        by_rid = {w[0]: w for w in workload}
        for outcome in sorted(decisions.values(), key=lambda o: o.decision_index):
            rid, dag, src, dst, rate, seed = by_rid[outcome.request_id]
            request = EmbeddingRequest(
                request_id=rid, dag=dag, source=src, dest=dst,
                flow=FlowConfig(rate=rate), seed=seed,
            )
            result = offline.submit(request, rng=seed)
            assert result.success == outcome.accepted
            if result.success:
                assert result.total_cost == pytest.approx(outcome.total_cost)
        shard_stats = stats["shards"][DEFAULT_NETWORK_ID]
        assert shard_stats["ledger_fingerprint"] == ledger_fingerprint(offline.ledger)
        assert shard_stats["standby"] is None

    def test_promote_without_standby_is_a_structured_error(self, tmp_path):
        network = tight_network()
        config = ServiceConfig(workers=0, wal_dir=str(tmp_path / "wal"))

        async def drive():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    with pytest.raises(ServiceError, match="standby"):
                        await client.promote()

        run(drive())

    def test_config_validation(self, tmp_path):
        with pytest.raises(ConfigurationError, match="wal_dir"):
            ServiceConfig(standby=True)
        with pytest.raises(ConfigurationError, match="standby_poll"):
            ServiceConfig(wal_dir=str(tmp_path), standby=True, standby_poll=0.0)


class TestDeprecationShims:
    """Satellite: the old service-layer module paths warn but keep working."""

    @pytest.mark.parametrize(
        "name", ["repro.service.state_store", "repro.service.worker"]
    )
    def test_old_import_paths_warn(self, name):
        sys.modules.pop(name, None)
        with pytest.warns(DeprecationWarning, match="repro.engine"):
            module = importlib.import_module(name)
        canonical = importlib.import_module(name.replace(".service.", ".engine."))
        for attr in module.__all__:
            assert getattr(module, attr) is getattr(canonical, attr)

    def test_new_import_path_is_quiet(self):
        sys.modules.pop("repro.engine.state_store", None)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            importlib.reload(importlib.import_module("repro.engine.state_store"))
