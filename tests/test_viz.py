"""Tests for the DOT exports (structure of the generated text)."""

import re

import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.network.generator import generate_network
from repro.sfc.builder import DagSfcBuilder
from repro.sfc.generator import generate_dag_sfc
from repro.solvers import MbbeEmbedder
from repro.viz.dot import dag_to_dot, embedding_to_dot, network_to_dot


@pytest.fixture(scope="module")
def solved():
    net = generate_network(NetworkConfig(size=20, connectivity=3.5, n_vnf_types=6), rng=3)
    dag = generate_dag_sfc(SfcConfig(size=5), n_vnf_types=6, rng=4)
    r = MbbeEmbedder().embed(net, dag, 0, 19, FlowConfig())
    assert r.success
    return net, dag, r.embedding


class TestDagDot:
    def test_fig2_structure(self, fig2_dag):
        dot = dag_to_dot(fig2_dag)
        assert dot.startswith("digraph")
        assert dot.count("subgraph cluster_L") == 3
        assert dot.count('shape=box') == 2  # two mergers
        # 8 inter-layer + 6 inner-layer meta-path arrows.
        assert dot.count("#C23B21") == 8
        assert dot.count("#2B7A3A") == 6
        assert "src" in dot and "dst" in dot

    def test_serial_dag_has_no_mergers(self):
        dag = DagSfcBuilder().single(1).single(2).build()
        dot = dag_to_dot(dag)
        assert "shape=box" not in dot
        assert "#2B7A3A" not in dot

    def test_balanced_braces(self, fig2_dag):
        dot = dag_to_dot(fig2_dag)
        assert dot.count("{") == dot.count("}")


class TestNetworkDot:
    def test_all_nodes_and_links_present(self, solved):
        net, _, _ = solved
        dot = network_to_dot(net)
        assert dot.startswith("graph")
        for node in net.nodes():
            assert f"n{node} [" in dot
        assert dot.count(" -- ") == net.graph.num_links

    def test_label_truncation(self, solved):
        net, _, _ = solved
        dot = network_to_dot(net, max_label_vnfs=1)
        assert "…" in dot


class TestEmbeddingDot:
    def test_hosting_nodes_highlighted(self, solved):
        net, _, emb = solved
        dot = embedding_to_dot(net, emb)
        filled = dot.count("style=filled")
        assert filled == len(set(emb.placements.values()))
        assert "doublecircle" in dot  # source marker
        assert "doubleoctagon" in dot  # dest marker

    def test_path_arrows_match_hops(self, solved):
        net, _, emb = solved
        dot = embedding_to_dot(net, emb)
        inter_arrows = len(re.findall(r"#C23B21", dot))
        inner_arrows = len(re.findall(r"#2B7A3A", dot))
        assert inter_arrows == sum(p.length for p in emb.inter_paths.values())
        assert inner_arrows == sum(p.length for p in emb.inner_paths.values())

    def test_balanced_and_renderable_syntax(self, solved):
        net, _, emb = solved
        dot = embedding_to_dot(net, emb)
        assert dot.count("{") == dot.count("}")
        assert dot.rstrip().endswith("}")
