"""Round-trip tests for the JSON serialization of instances."""

import json

import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.embedding.costing import compute_cost
from repro.embedding.feasibility import verify_embedding
from repro.exceptions import ConfigurationError
from repro.network.generator import generate_network
from repro.serialize import (
    dag_from_dict,
    dag_to_dict,
    dump_instance,
    embedding_from_dict,
    embedding_to_dict,
    load_instance,
    network_from_dict,
    network_to_dict,
)
from repro.sfc.generator import generate_dag_sfc
from repro.solvers import MbbeEmbedder


@pytest.fixture(scope="module")
def instance():
    cfg = NetworkConfig(size=30, connectivity=4.0, n_vnf_types=6)
    net = generate_network(cfg, rng=3)
    dag = generate_dag_sfc(SfcConfig(size=5), n_vnf_types=6, rng=4)
    result = MbbeEmbedder().embed(net, dag, 0, 29, FlowConfig())
    assert result.success
    return net, dag, result


class TestNetworkRoundTrip:
    def test_topology_preserved(self, instance):
        net, _, _ = instance
        clone = network_from_dict(network_to_dict(net))
        assert set(clone.graph.nodes()) == set(net.graph.nodes())
        assert {l.key for l in clone.graph.links()} == {l.key for l in net.graph.links()}
        for link in net.graph.links():
            c = clone.graph.link(link.u, link.v)
            assert c.price == link.price and c.capacity == link.capacity

    def test_instances_preserved(self, instance):
        net, _, _ = instance
        clone = network_from_dict(network_to_dict(net))
        assert clone.deployments.count() == net.deployments.count()
        for inst in net.deployments.all_instances():
            c = clone.instance(inst.node, inst.vnf_type)
            assert c.price == inst.price and c.capacity == inst.capacity

    def test_json_serializable(self, instance):
        net, _, _ = instance
        json.dumps(network_to_dict(net))  # must not raise

    def test_header_checked(self, instance):
        net, _, _ = instance
        doc = network_to_dict(net)
        doc["version"] = 99
        with pytest.raises(ConfigurationError):
            network_from_dict(doc)
        doc = network_to_dict(net)
        doc["kind"] = "other"
        with pytest.raises(ConfigurationError):
            network_from_dict(doc)


class TestDagRoundTrip:
    def test_structure_preserved(self, instance):
        _, dag, _ = instance
        clone = dag_from_dict(dag_to_dict(dag))
        assert clone == dag

    def test_mergers_implicit(self, instance):
        _, dag, _ = instance
        doc = dag_to_dict(dag)
        # Serialized layers carry only the parallel sets, no sentinel ids.
        for layer in doc["layers"]:
            assert all(v >= 1 for v in layer)


class TestEmbeddingRoundTrip:
    def test_full_roundtrip_verifies_and_costs_equal(self, instance):
        net, dag, result = instance
        clone = embedding_from_dict(embedding_to_dict(result.embedding))
        verify_embedding(net, clone, FlowConfig())
        original = compute_cost(net, result.embedding, FlowConfig())
        restored = compute_cost(net, clone, FlowConfig())
        assert restored.total == pytest.approx(original.total)
        assert clone.placements == dict(result.embedding.placements)


class TestInstanceFiles:
    def test_dump_and_load(self, instance, tmp_path):
        net, dag, result = instance
        path = tmp_path / "instance.json"
        dump_instance(
            str(path), net, dag, source=0, dest=29,
            embedding=result.embedding, metadata={"seed": 3},
        )
        net2, dag2, src, dst, emb2, meta = load_instance(str(path))
        assert (src, dst) == (0, 29)
        assert dag2 == dag
        assert meta == {"seed": 3}
        assert emb2 is not None
        verify_embedding(net2, emb2, FlowConfig())

    def test_instance_without_embedding(self, instance, tmp_path):
        net, dag, _ = instance
        path = tmp_path / "bare.json"
        dump_instance(str(path), net, dag, source=1, dest=2)
        _, _, src, dst, emb, meta = load_instance(str(path))
        assert emb is None and meta == {}
        assert (src, dst) == (1, 2)

    def test_solution_on_reloaded_network_matches(self, instance, tmp_path):
        """Solving the reloaded instance reproduces the original cost."""
        net, dag, result = instance
        path = tmp_path / "replay.json"
        dump_instance(str(path), net, dag, source=0, dest=29)
        net2, dag2, src, dst, _, _ = load_instance(str(path))
        replay = MbbeEmbedder().embed(net2, dag2, src, dst, FlowConfig())
        assert replay.success
        assert replay.total_cost == pytest.approx(result.total_cost)
