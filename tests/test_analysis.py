"""Tests for the delay/complexity analysis extensions."""

import pytest

from repro.analysis.complexity import mbbe_k_factor, search_effort
from repro.analysis.delay import (
    DelayModel,
    dag_delay,
    parallelism_speedup,
    sequentialized_delay,
)
from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.embedding.mapping import Embedding
from repro.network.cloud import CloudNetwork
from repro.network.generator import generate_network
from repro.network.paths import Path
from repro.nfv.vnf import standard_catalog
from repro.sfc.builder import DagSfcBuilder
from repro.sfc.generator import generate_dag_sfc
from repro.solvers import BbeEmbedder, MbbeEmbedder
from repro.types import MERGER_VNF, Position

from .conftest import build_line_graph


@pytest.fixture
def parallel_embedding():
    """f1 | {f2,f3}+merger on a line; branch delays differ."""
    g = build_line_graph(5, price=1.0, capacity=100.0)
    net = CloudNetwork(g)
    net.deploy(1, 1, price=10.0, capacity=100.0)
    net.deploy(2, 2, price=20.0, capacity=100.0)
    net.deploy(3, 3, price=30.0, capacity=100.0)
    net.deploy(3, MERGER_VNF, price=5.0, capacity=100.0)
    dag = DagSfcBuilder().single(1).parallel(2, 3).build()
    emb = Embedding(
        dag=dag, source=0, dest=4,
        placements={
            Position(1, 1): 1, Position(2, 1): 2,
            Position(2, 2): 3, Position(2, 3): 3,
        },
        inter_paths={
            Position(1, 1): Path((0, 1)),
            Position(2, 1): Path((1, 2)),
            Position(2, 2): Path((1, 2, 3)),
            Position(3, 1): Path((3, 4)),
        },
        inner_paths={Position(2, 1): Path((2, 3)), Position(2, 2): Path.trivial(3)},
    )
    return emb


class TestDelayModel:
    def test_hand_computed_dag_delay(self, parallel_embedding):
        model = DelayModel(per_hop_delay=1.0, default_processing_delay=0.0, merger_delay=0.0)
        # L1: 1 hop; L2 branches: f2 = 1 + 0 + 1 = 2, f3 = 2 + 0 + 0 = 2 -> max 2.
        # Tail: 1 hop. Total = 1 + 2 + 1 = 4.
        assert dag_delay(parallel_embedding, model) == pytest.approx(4.0)

    def test_sequentialized_sums_branches(self, parallel_embedding):
        model = DelayModel(per_hop_delay=1.0, default_processing_delay=0.0, merger_delay=0.0)
        # L2 contributes 2 + 2 = 4 instead of 2. Total = 1 + 4 + 1 = 6.
        assert sequentialized_delay(parallel_embedding, model) == pytest.approx(6.0)

    def test_speedup_ge_one(self, parallel_embedding):
        assert parallelism_speedup(parallel_embedding) >= 1.0

    def test_serial_dag_speedup_is_one(self):
        g = build_line_graph(3, capacity=100.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=1.0, capacity=100.0)
        dag = DagSfcBuilder().single(1).build()
        emb = Embedding(
            dag=dag, source=0, dest=2,
            placements={Position(1, 1): 1},
            inter_paths={Position(1, 1): Path((0, 1)), Position(2, 1): Path((1, 2))},
            inner_paths={},
        )
        assert parallelism_speedup(emb) == pytest.approx(1.0)

    def test_catalog_delays_used(self, parallel_embedding):
        cat = standard_catalog()
        model = DelayModel(catalog=cat, per_hop_delay=0.0, merger_delay=0.0)
        # With zero hop delay, layer delay = max of catalog processing delays.
        d = dag_delay(parallel_embedding, model)
        expected = cat.descriptor(1).processing_delay + max(
            cat.descriptor(2).processing_delay, cat.descriptor(3).processing_delay
        )
        assert d == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(Exception):
            DelayModel(per_hop_delay=-1.0)

    def test_hybrid_beats_sequential_on_real_solutions(self):
        net = generate_network(
            NetworkConfig(size=40, connectivity=4.0, n_vnf_types=6), rng=3
        )
        dag = generate_dag_sfc(SfcConfig(size=6), n_vnf_types=6, rng=4)
        r = MbbeEmbedder().embed(net, dag, 0, 39, FlowConfig())
        assert r.success
        assert parallelism_speedup(r.embedding) > 1.0


class TestComplexity:
    def test_k_factor(self):
        assert mbbe_k_factor(1, 3) == 4.0
        assert mbbe_k_factor(4, 2) == pytest.approx((1 - 4**3) / (1 - 4))

    def test_search_effort_extraction(self):
        net = generate_network(
            NetworkConfig(size=30, connectivity=4.0, n_vnf_types=6), rng=5
        )
        dag = generate_dag_sfc(SfcConfig(size=5), n_vnf_types=6, rng=6)
        bbe = BbeEmbedder().embed(net, dag, 0, 29)
        mbbe = MbbeEmbedder().embed(net, dag, 0, 29)
        eb, em = search_effort(bbe), search_effort(mbbe)
        assert eb.solver == "BBE" and em.solver == "MBBE"
        assert eb.tree_size > 0 and em.tree_size > 0
        # The §4.5 claim: MBBE's search space is much smaller.
        assert em.total_subsolutions <= eb.total_subsolutions
