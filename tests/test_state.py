"""Tests for residual-capacity tracking (the real-time network graph)."""

import pytest

from repro.exceptions import CapacityError, ConfigurationError
from repro.network.cloud import CloudNetwork
from repro.network.state import ResidualState

from .conftest import build_line_graph


@pytest.fixture
def small_cloud():
    g = build_line_graph(4, price=1.0, capacity=2.0)
    net = CloudNetwork(g)
    net.deploy(1, 1, price=10.0, capacity=3.0)
    net.deploy(2, 2, price=12.0, capacity=1.0)
    return net


class TestLinkReservations:
    def test_reserve_and_residual(self, small_cloud):
        st = ResidualState(small_cloud)
        assert st.link_residual(0, 1) == pytest.approx(2.0)
        st.reserve_link(0, 1, 1.5)
        assert st.link_residual(0, 1) == pytest.approx(0.5)
        assert st.link_used(1, 0) == pytest.approx(1.5)  # symmetric

    def test_overflow_raises(self, small_cloud):
        st = ResidualState(small_cloud)
        st.reserve_link(0, 1, 2.0)
        with pytest.raises(CapacityError):
            st.reserve_link(0, 1, 0.5)

    def test_link_admits(self, small_cloud):
        st = ResidualState(small_cloud)
        link = small_cloud.graph.link(0, 1)
        assert st.link_admits(link, 2.0)
        st.reserve_link(0, 1, 1.0)
        assert st.link_admits(link, 1.0)
        assert not st.link_admits(link, 1.1)


class TestVnfReservations:
    def test_reserve_and_residual(self, small_cloud):
        st = ResidualState(small_cloud)
        st.reserve_vnf(1, 1, 2.0)
        assert st.vnf_residual(1, 1) == pytest.approx(1.0)

    def test_overflow_raises(self, small_cloud):
        st = ResidualState(small_cloud)
        with pytest.raises(CapacityError):
            st.reserve_vnf(2, 2, 1.5)

    def test_missing_instance(self, small_cloud):
        st = ResidualState(small_cloud)
        with pytest.raises(ConfigurationError):
            st.reserve_vnf(0, 1, 1.0)

    def test_vnf_admits(self, small_cloud):
        st = ResidualState(small_cloud)
        assert st.vnf_admits(1, 1, 3.0)
        assert not st.vnf_admits(1, 1, 3.1)
        assert not st.vnf_admits(0, 1, 0.1)  # not deployed


class TestTransactions:
    def test_rollback_restores(self, small_cloud):
        st = ResidualState(small_cloud)
        st.reserve_link(0, 1, 1.0)
        mark = st.mark()
        st.reserve_link(0, 1, 1.0)
        st.reserve_vnf(1, 1, 2.0)
        st.rollback(mark)
        assert st.link_used(0, 1) == pytest.approx(1.0)
        assert st.vnf_used(1, 1) == 0.0

    def test_nested_marks(self, small_cloud):
        st = ResidualState(small_cloud)
        m0 = st.mark()
        st.reserve_link(0, 1, 0.5)
        m1 = st.mark()
        st.reserve_link(1, 2, 0.5)
        st.rollback(m1)
        assert st.link_used(1, 2) == 0.0
        st.rollback(m0)
        assert st.link_used(0, 1) == 0.0

    def test_invalid_mark(self, small_cloud):
        st = ResidualState(small_cloud)
        with pytest.raises(ValueError):
            st.rollback(5)

    def test_clear(self, small_cloud):
        st = ResidualState(small_cloud)
        st.reserve_link(0, 1, 1.0)
        st.clear()
        assert st.link_used(0, 1) == 0.0

    def test_snapshot_independent(self, small_cloud):
        st = ResidualState(small_cloud)
        st.reserve_link(0, 1, 1.0)
        snap = st.snapshot()
        st.reserve_link(0, 1, 1.0)
        assert snap.link_used(0, 1) == pytest.approx(1.0)
        assert st.link_used(0, 1) == pytest.approx(2.0)


class TestFilters:
    def test_link_filter_for_search(self, small_cloud):
        st = ResidualState(small_cloud)
        st.reserve_link(1, 2, 2.0)  # saturate middle link
        f = st.link_filter(rate=1.0)
        assert f(small_cloud.graph.link(0, 1))
        assert not f(small_cloud.graph.link(1, 2))

    def test_used_iterators(self, small_cloud):
        st = ResidualState(small_cloud)
        st.reserve_link(0, 1, 1.0)
        st.reserve_vnf(1, 1, 1.0)
        assert dict(st.used_links()) == {(0, 1): 1.0}
        assert dict(st.used_vnfs()) == {(1, 1): 1.0}
