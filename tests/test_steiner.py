"""Unit tests for exact and approximate Steiner trees."""

from itertools import combinations

import pytest

from repro.config import NetworkConfig
from repro.exceptions import ConfigurationError, DisconnectedNetworkError
from repro.network.generator import generate_network
from repro.network.steiner import exact_steiner_tree, mst_steiner_tree

from .conftest import build_line_graph, build_square_graph


def _tree_is_connected_and_spans(tree, graph):
    """The edge set must connect root to all terminals and be acyclic."""
    nodes = {tree.root}
    for u, v in tree.edges:
        nodes.add(u)
        nodes.add(v)
    # acyclic: |E| = |V| - 1 for a connected tree.
    if tree.edges:
        assert len(tree.edges) == len(nodes) - 1
    for t in tree.terminals:
        p = tree.path_to(graph, t)
        assert p.source == tree.root and p.target == t
        for e in p.edges():
            assert e in tree.edges or p.is_trivial


class TestExact:
    def test_single_terminal_is_empty(self, line5):
        t = exact_steiner_tree(line5, 2, [2])
        assert t.cost == 0.0 and t.edges == frozenset()

    def test_line_tree_spans_interval(self, line5):
        t = exact_steiner_tree(line5, 0, [4, 2])
        assert t.cost == pytest.approx(4.0)
        _tree_is_connected_and_spans(t, line5)

    def test_square_multicast_shares_links(self):
        g = build_square_graph(price=1.0)
        # Root 0 to terminals {1, 2}: tree 0-1, 1-2 costs 2.0 (vs 0-1 + 0-2 = 3.0).
        t = exact_steiner_tree(g, 0, [1, 2])
        assert t.cost == pytest.approx(2.0)
        _tree_is_connected_and_spans(t, g)

    def test_terminal_cap(self, line5):
        with pytest.raises(ConfigurationError):
            exact_steiner_tree(line5, 0, [1, 2, 3, 4], max_terminals=3)

    def test_disconnected_raises(self):
        g = build_line_graph(3)
        g.add_node(9)
        with pytest.raises(DisconnectedNetworkError):
            exact_steiner_tree(g, 0, [9])

    def test_steiner_point_used(self):
        # Star: center 0 with leaves 1,2,3 - optimal tree for terminals
        # {1,2,3} rooted at 1 must pass through non-terminal 0.
        from repro.network.graph import Graph

        g = Graph()
        for leaf in (1, 2, 3):
            g.add_link(0, leaf, price=1.0, capacity=10.0)
        t = exact_steiner_tree(g, 1, [2, 3])
        assert t.cost == pytest.approx(3.0)
        assert {e for e in t.edges} == {(0, 1), (0, 2), (0, 3)}


class TestApprox:
    def test_matches_exact_on_line(self, line5):
        a = mst_steiner_tree(line5, 0, [3])
        e = exact_steiner_tree(line5, 0, [3])
        assert a.cost == pytest.approx(e.cost)

    def test_within_2x_of_exact_on_random_networks(self):
        for seed in (1, 2, 3):
            net = generate_network(
                NetworkConfig(size=14, connectivity=3.5, n_vnf_types=2), rng=seed
            )
            g = net.graph
            nodes = sorted(g.nodes())
            for terms in list(combinations(nodes[:8], 3))[:5]:
                e = exact_steiner_tree(g, terms[0], terms[1:])
                a = mst_steiner_tree(g, terms[0], terms[1:])
                assert e.cost <= a.cost + 1e-9
                assert a.cost <= 2.0 * e.cost + 1e-9
                _tree_is_connected_and_spans(a, g)
                _tree_is_connected_and_spans(e, g)

    def test_disconnected_raises(self):
        g = build_line_graph(2)
        g.add_node(5)
        with pytest.raises(DisconnectedNetworkError):
            mst_steiner_tree(g, 0, [5])
