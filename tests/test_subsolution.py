"""Tests for sub-solutions, the sub-solution tree, and shared evaluation."""

import pytest

from repro.config import FlowConfig
from repro.network.cloud import CloudNetwork
from repro.network.paths import Path
from repro.sfc.builder import DagSfcBuilder
from repro.sfc.dag import Layer
from repro.solvers.common import (
    coverage_stop,
    evaluate_layer_candidate,
    evaluate_tail,
    vnf_admit,
)
from repro.solvers.subsolution import SubSolution, SubSolutionTree
from repro.types import MERGER_VNF, Position

from .conftest import build_line_graph


@pytest.fixture
def cloud():
    g = build_line_graph(5, price=1.0, capacity=2.0)
    net = CloudNetwork(g)
    net.deploy(1, 1, price=10.0, capacity=2.0)
    net.deploy(2, 2, price=20.0, capacity=2.0)
    net.deploy(3, 3, price=30.0, capacity=2.0)
    net.deploy(3, MERGER_VNF, price=5.0, capacity=2.0)
    return net


class TestSubSolutionChain:
    def test_root(self):
        root = SubSolution.root(7)
        assert root.layer == 0 and root.end_node == 7
        assert root.cum_cost == 0.0
        assert list(root.chain()) == [root]

    def test_tree_insert_and_query(self, cloud):
        tree = SubSolutionTree(0)
        child = SubSolution(
            layer=1,
            parent=tree.root,
            end_node=1,
            placements={Position(1, 1): 1},
            inter_paths={Position(1, 1): Path((0, 1))},
            inner_paths={},
            layer_cost=11.0,
            cum_cost=11.0,
            vnf_counts={(1, 1): 1},
            link_counts={(0, 1): 1},
        )
        tree.insert(tree.root, child)
        assert tree.layer_nodes(1) == [child]
        assert tree.root.children == [child]
        assert tree.size() == 2
        assert tree.depth() == 1
        assert tree.cheapest(1) is child
        assert tree.cheapest(2) is None

    def test_insert_validates_lineage(self):
        tree = SubSolutionTree(0)
        stranger = SubSolution.root(5)
        with pytest.raises(ValueError):
            tree.insert(tree.root, stranger)


class TestEvaluateLayerCandidate:
    def test_single_vnf_layer(self, cloud):
        parent = SubSolution.root(0)
        layer = Layer((1,))
        ss = evaluate_layer_candidate(
            cloud,
            FlowConfig(),
            parent,
            1,
            layer,
            assignment={1: 1},
            inter_paths={1: Path((0, 1))},
            inner_paths={},
        )
        assert ss is not None
        assert ss.end_node == 1
        assert ss.layer_cost == pytest.approx(10.0 + 1.0)
        assert ss.vnf_counts == {(1, 1): 1}
        assert ss.link_counts == {(0, 1): 1}

    def test_parallel_layer_multicast_union(self, cloud):
        parent = SubSolution.root(1)
        layer = Layer((2, 3))
        ss = evaluate_layer_candidate(
            cloud,
            FlowConfig(),
            parent,
            1,
            layer,
            assignment={1: 2, 2: 3, 3: 3},
            inter_paths={1: Path((1, 2)), 2: Path((1, 2, 3))},
            inner_paths={1: Path((2, 3)), 2: Path.trivial(3)},
        )
        assert ss is not None
        # Links: union{1-2, 2-3} once + inner 2-3 once = 1-2:1, 2-3:2.
        assert ss.link_counts == {(1, 2): 1, (2, 3): 2}
        assert ss.layer_cost == pytest.approx((20 + 30 + 5) + (1 + 2))
        assert ss.end_node == 3

    def test_capacity_rejection_link(self, cloud):
        parent = SubSolution.root(1)
        layer = Layer((2, 3))
        # Rate 1, capacity 2: link 2-3 used twice is fine; rate 1.5 overflows.
        ss = evaluate_layer_candidate(
            cloud,
            FlowConfig(rate=1.5),
            parent,
            1,
            layer,
            assignment={1: 2, 2: 3, 3: 3},
            inter_paths={1: Path((1, 2)), 2: Path((1, 2, 3))},
            inner_paths={1: Path((2, 3)), 2: Path.trivial(3)},
        )
        assert ss is None

    def test_capacity_rejection_vnf(self, cloud):
        parent = SubSolution.root(0)
        layer = Layer((1,))
        ss1 = evaluate_layer_candidate(
            cloud, FlowConfig(rate=2.0), parent, 1, layer,
            assignment={1: 1}, inter_paths={1: Path((0, 1))}, inner_paths={},
        )
        assert ss1 is not None  # exactly at capacity
        # A second use of the same instance would need 4.0 > 2.0.
        layer2 = Layer((1,))
        ss2 = evaluate_layer_candidate(
            cloud, FlowConfig(rate=2.0), ss1, 2, layer2,
            assignment={1: 1}, inter_paths={1: Path.trivial(1)}, inner_paths={},
        )
        assert ss2 is None

    def test_endpoint_validation(self, cloud):
        parent = SubSolution.root(0)
        layer = Layer((1,))
        with pytest.raises(ValueError):
            evaluate_layer_candidate(
                cloud, FlowConfig(), parent, 1, layer,
                assignment={1: 1}, inter_paths={1: Path((1, 0))}, inner_paths={},
            )

    def test_wrong_width_assignment(self, cloud):
        parent = SubSolution.root(0)
        with pytest.raises(ValueError):
            evaluate_layer_candidate(
                cloud, FlowConfig(), parent, 1, Layer((2, 3)),
                assignment={1: 2}, inter_paths={}, inner_paths={},
            )


class TestEvaluateTail:
    def test_tail_cost_and_end(self, cloud):
        parent = SubSolution.root(3)
        leaf = evaluate_tail(cloud, FlowConfig(), parent, 2, Path((3, 4)))
        assert leaf is not None
        assert leaf.end_node == 4
        assert leaf.layer_cost == pytest.approx(1.0)
        assert Position(2, 1) in leaf.inter_paths

    def test_tail_capacity_rejected(self, cloud):
        parent = SubSolution.root(3)
        assert evaluate_tail(cloud, FlowConfig(rate=5.0), parent, 2, Path((3, 4))) is None

    def test_to_embedding_roundtrip(self, cloud):
        dag = DagSfcBuilder().single(1).build()
        root = SubSolution.root(0)
        layer = dag.layer(1)
        ss = evaluate_layer_candidate(
            cloud, FlowConfig(), root, 1, layer,
            assignment={1: 1}, inter_paths={1: Path((0, 1))}, inner_paths={},
        )
        leaf = evaluate_tail(cloud, FlowConfig(), ss, 2, Path((1, 2, 3, 4)))
        emb = leaf.to_embedding(dag, 0, 4)
        assert emb.placements == {Position(1, 1): 1}
        assert emb.inter_paths[Position(2, 1)].nodes == (1, 2, 3, 4)


class TestPredicates:
    def test_vnf_admit_respects_counts(self, cloud):
        admit = vnf_admit(cloud, {(1, 1): 2}, rate=1.0)
        assert not admit(1, 1)  # capacity 2, already 2 uses
        admit2 = vnf_admit(cloud, {(1, 1): 1}, rate=1.0)
        assert admit2(1, 1)
        assert not admit2(0, 1)  # not deployed

    def test_coverage_stop(self, cloud):
        admit = vnf_admit(cloud, {}, rate=1.0)
        stop = coverage_stop(cloud, (2, 3, MERGER_VNF), admit)
        assert not stop(frozenset({1, 2}))
        assert stop(frozenset({2, 3}))
