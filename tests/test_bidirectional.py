"""Tests for bidirectional Dijkstra and the canonical chain library."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig
from repro.exceptions import NodeNotFoundError
from repro.network.generator import generate_network
from repro.network.shortest import bidirectional_dijkstra, min_cost_path
from repro.nfv.chains import CANONICAL_CHAINS, branch_access_chain, intercept_chain, web_security_chain
from repro.nfv.parallelism import ParallelismAnalyzer
from repro.sfc.transform import to_dag_sfc

from .conftest import build_line_graph, build_square_graph


class TestBidirectionalDijkstra:
    def test_trivial_and_adjacent(self, line5):
        assert bidirectional_dijkstra(line5, 2, 2).is_trivial
        assert bidirectional_dijkstra(line5, 0, 1).nodes == (0, 1)

    def test_picks_cheapest_route(self):
        g = build_square_graph(price=1.0)  # diagonal 0-2 costs 2, ring 2 hops cost 2
        p = bidirectional_dijkstra(g, 0, 2)
        assert p.cost(g) == pytest.approx(2.0)

    def test_unreachable(self):
        g = build_line_graph(3)
        g.add_node(7)
        assert bidirectional_dijkstra(g, 0, 7) is None

    def test_missing_nodes_raise(self, line5):
        with pytest.raises(NodeNotFoundError):
            bidirectional_dijkstra(line5, 99, 0)
        with pytest.raises(NodeNotFoundError):
            bidirectional_dijkstra(line5, 0, 99)

    def test_link_filter_respected(self, line5):
        p = bidirectional_dijkstra(line5, 0, 4, link_filter=lambda l: l.key != (2, 3))
        assert p is None

    @given(seed=st.integers(0, 2000), pair_seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_matches_unidirectional(self, seed, pair_seed):
        net = generate_network(
            NetworkConfig(size=40, connectivity=4.0, n_vnf_types=3), rng=seed
        )
        g = net.graph
        rng = np.random.default_rng(pair_seed)
        a, b = (int(x) for x in rng.choice(40, size=2, replace=False))
        p1 = min_cost_path(g, a, b)
        p2 = bidirectional_dijkstra(g, a, b)
        assert (p1 is None) == (p2 is None)
        if p1 is not None:
            assert p2.cost(g) == pytest.approx(p1.cost(g))
            assert p2.source == a and p2.target == b
            p2.validate(g)


class TestCanonicalChains:
    def test_registry_complete(self):
        assert set(CANONICAL_CHAINS) == {
            "web-security", "branch-access", "cdn-edge", "intercept"
        }
        for factory in CANONICAL_CHAINS.values():
            chain, catalog = factory()
            assert chain.size == 4
            for vnf in chain:
                assert vnf in catalog

    def test_web_security_parallelizes_inspection(self):
        chain, catalog = web_security_chain()
        dag = to_dag_sfc(chain, ParallelismAnalyzer(catalog))
        # firewall/dpi/ids merge; the LB stays behind them.
        assert dag.omega < chain.size
        assert dag.layer(1).phi >= 2

    def test_branch_access_stays_mostly_serial(self):
        chain, catalog = branch_access_chain()
        dag = to_dag_sfc(chain, ParallelismAnalyzer(catalog))
        inter_chain, _ = intercept_chain()
        intercept_dag = to_dag_sfc(inter_chain, ParallelismAnalyzer(catalog))
        # Write-heavy chain has more layers than the read-only tap.
        assert dag.omega >= intercept_dag.omega

    def test_intercept_fully_parallel(self):
        chain, catalog = intercept_chain()
        dag = to_dag_sfc(chain, ParallelismAnalyzer(catalog), max_parallel=4)
        assert dag.omega == 1
        assert dag.layer(1).phi == 4
