"""Tests for the FST/BST search-tree structure (§4.2–4.3, Table 1, Fig. 4)."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.network.cloud import CloudNetwork
from repro.network.shortest import bfs_rings
from repro.solvers.searchtree import SearchTree

from .conftest import build_square_graph, fully_deployed_cloud


@pytest.fixture
def square_tree():
    g = build_square_graph(price=1.0)
    net = CloudNetwork(g)
    net.deploy(0, 1, price=1.0, capacity=10.0)
    net.deploy(2, 2, price=1.0, capacity=10.0)
    net.deploy(3, 2, price=1.0, capacity=10.0)
    rings = bfs_rings(g, 1, stop=lambda seen: len(seen) >= 4)
    return net, SearchTree(net, rings)


class TestViews:
    def test_root_and_nodes(self, square_tree):
        net, tree = square_tree
        assert tree.root == 1
        assert tree.node_set == frozenset({0, 1, 2, 3})
        assert tree.complete

    def test_covered_vnfs(self, square_tree):
        net, tree = square_tree
        assert tree.covered_vnfs() == frozenset({1, 2})

    def test_nodes_hosting(self, square_tree):
        net, tree = square_tree
        assert tree.nodes_hosting(2) == [2, 3]
        assert tree.nodes_hosting(2, admit=lambda n: n != 2) == [3]
        assert tree.nodes_hosting(9) == []


class TestPathEnumeration:
    def test_root_path_is_trivial(self, square_tree):
        net, tree = square_tree
        paths = tree.enumerate_root_paths(1)
        assert len(paths) == 1 and paths[0].is_trivial

    def test_multiple_shortest_hop_paths(self, square_tree):
        net, tree = square_tree
        # Node 3 is 2 hops from root 1, via 0 or via 2.
        paths = tree.enumerate_root_paths(3, max_paths=None)
        assert {p.nodes for p in paths} == {(1, 0, 3), (1, 2, 3)}
        # Sorted by cost: both cost 2.0 here, ties broken deterministically.
        assert paths[0].cost(net.graph) <= paths[1].cost(net.graph)

    def test_max_paths_cap(self, square_tree):
        net, tree = square_tree
        assert len(tree.enumerate_root_paths(3, max_paths=1)) == 1

    def test_all_paths_start_at_root_end_at_node(self, square_tree):
        net, tree = square_tree
        for p in tree.enumerate_root_paths(3, max_paths=None):
            assert p.source == 1 and p.target == 3
            p.validate(net.graph)

    def test_unsearched_node_raises(self):
        g = build_square_graph()
        net = CloudNetwork(g)
        rings = bfs_rings(g, 0, stop=lambda seen: True)  # only the root
        tree = SearchTree(net, rings)
        with pytest.raises(NodeNotFoundError):
            tree.enumerate_root_paths(2)

    def test_cheapest_root_path(self, square_tree):
        net, tree = square_tree
        p = tree.cheapest_root_path(2)
        assert p.nodes == (1, 2)


class TestBinaryTreeView:
    def test_table1_elements(self, square_tree):
        net, tree = square_tree
        root = tree.as_binary_tree()
        assert root.node_id == 1
        assert root.father is None
        # Ring 1 = {0, 2} chained by right pointers; leftmost hangs off root.
        assert root.left is not None and root.left.node_id == 0
        assert root.left.right is not None and root.left.right.node_id == 2
        # Ring 2 = {3}.
        assert root.left.left is not None and root.left.left.node_id == 3

    def test_previous_and_next_node_lists(self, square_tree):
        net, tree = square_tree
        nodes = {n.node_id: n for n in tree.iter_binary_tree()}
        assert set(nodes) == {0, 1, 2, 3}
        assert set(nodes[3].previous_nodes) == {0, 2}
        assert 3 in nodes[0].next_nodes
        assert nodes[0].available_vnfs == frozenset({1})

    def test_iteration_right_then_left_visits_all(self, square_tree):
        net, tree = square_tree
        ids = [n.node_id for n in tree.iter_binary_tree()]
        assert sorted(ids) == [0, 1, 2, 3]
