"""The paper's Fig. 3 worked example, reconstructed and executed.

§4.2.1 narrates the forward search of layer 2 (the Fig. 2 DAG-SFC) from
node v_a hosting f(1):

* after iteration 1: ``V = {v_a}``, ``F = {f1, f6, f7, merger}`` — not
  covering ``L_2 = {f2, f3, f4, f5, merger}``;
* after iteration 2: ``V = {v_a, v_b, v_h}``,
  ``F = {f1, f2, f3, f5, f6, f7, merger}`` — still missing f4;
* after iteration 3: ``V = {v_a, v_b, v_c, v_e, v_h, v_l}`` and the layer
  is covered, so ``I_2^F`` terminates.

The paper's figure pins the node-set trajectory; the full topology isn't
printed, so we reconstruct the smallest instance consistent with the
narration (deployments chosen to make each quoted VNF set exact) and run
the *actual* forward/backward search code over it.
"""

import pytest

from repro.config import FlowConfig
from repro.network.cloud import CloudNetwork
from repro.network.graph import Graph
from repro.network.shortest import bfs_rings
from repro.sfc.builder import DagSfcBuilder
from repro.solvers.common import coverage_stop, vnf_admit
from repro.solvers.searchtree import SearchTree
from repro.types import MERGER_VNF

# Node ids for v_a … v_l.
A, B, C, E, H, L = 0, 1, 2, 3, 4, 5


@pytest.fixture
def fig3_network() -> CloudNetwork:
    """Reconstruction: ring 1 = {v_b, v_h}, ring 2 = {v_c, v_e, v_l}."""
    g = Graph()
    # v_a adjacent to v_b and v_h (iteration 2 discovers exactly those).
    g.add_link(A, B, price=1.0, capacity=10.0)
    g.add_link(A, H, price=1.0, capacity=10.0)
    # iteration 3 discovers v_c, v_e (via v_b) and v_l (via v_h).
    g.add_link(B, C, price=1.0, capacity=10.0)
    g.add_link(B, E, price=1.0, capacity=10.0)
    g.add_link(H, L, price=1.0, capacity=10.0)
    # An extra intra-ring link so the BST has path diversity (Fig. 4 shows
    # multiple dotted arrows).
    g.add_link(C, E, price=1.0, capacity=10.0)

    net = CloudNetwork(g)

    def deploy(node, *types):
        for t in types:
            net.deploy(node, t, price=10.0, capacity=10.0)

    # F_a = {f1, f6, f7, merger} (the paper's F^{F,2}_{a,1}).
    deploy(A, 1, 6, 7, MERGER_VNF)
    # After iteration 2 the union gains f2, f3, f5 via v_b and v_h.
    deploy(B, 2, 3)
    deploy(H, 5)
    # Iteration 3 completes coverage with f4; the paper assigns
    # f2, f3, f5 on v_c and f4 on v_e in its candidate sub-solution.
    deploy(C, 2, 3, 5, MERGER_VNF)
    deploy(E, 4)
    deploy(L, 6)
    return net


@pytest.fixture
def layer2():
    """Layer 2 of the Fig. 2 DAG-SFC: {f2, f3, f4, f5} + merger."""
    dag = DagSfcBuilder().single(1).parallel(2, 3, 4, 5).parallel(6, 7).build()
    return dag.layer(2)


class TestForwardSearchNarrative:
    def test_iteration_trajectory(self, fig3_network, layer2):
        admit = vnf_admit(fig3_network, {}, rate=1.0)
        stop = coverage_stop(fig3_network, layer2.required_types, admit)
        rings = bfs_rings(fig3_network.graph, A, stop=stop)
        assert rings.complete
        # Three iterations, exactly the narrated node sets.
        assert rings.rings[0] == frozenset({A})
        assert rings.rings[1] == frozenset({B, H})
        assert rings.rings[2] == frozenset({C, E, L})
        assert rings.iterations == 3

    def test_vnf_set_trajectory(self, fig3_network, layer2):
        net = fig3_network
        f_after_1 = net.vnf_types_at(A)
        assert f_after_1 == {1, 6, 7, MERGER_VNF}
        f_after_2 = f_after_1 | net.vnf_types_at(B) | net.vnf_types_at(H)
        assert f_after_2 == {1, 2, 3, 5, 6, 7, MERGER_VNF}
        assert not set(layer2.required_types) <= f_after_2  # f4 missing
        f_after_3 = f_after_2 | net.vnf_types_at(C) | net.vnf_types_at(E) | net.vnf_types_at(L)
        assert set(layer2.required_types) <= f_after_3


class TestBackwardSearchNarrative:
    def test_backward_from_vc_covers_layer(self, fig3_network, layer2):
        """v_c hosts a merger; the BST from it re-covers {f2..f5}."""
        admit = vnf_admit(fig3_network, {}, rate=1.0)
        stop = coverage_stop(fig3_network, layer2.required_types, admit)
        rings = bfs_rings(fig3_network.graph, A, stop=stop)
        fst = SearchTree(fig3_network, rings)
        assert C in fst.nodes_hosting(MERGER_VNF)
        bstop = coverage_stop(fig3_network, layer2.parallel, admit)
        brings = bfs_rings(
            fig3_network.graph, C, stop=bstop, allowed=lambda n: n in fst.node_set
        )
        assert brings.complete
        bst = SearchTree(fig3_network, brings)
        assert bst.node_set <= fst.node_set  # V^B ⊆ V^F

    def test_papers_candidate_subsolution(self, fig3_network):
        """§4.4.1's example allocation: f2, f3, f5 on v_c and f4 on v_e."""
        from repro.solvers.common import evaluate_layer_candidate
        from repro.solvers.subsolution import SubSolution
        from repro.network.paths import Path
        from repro.sfc.dag import Layer

        layer = Layer((2, 3, 4, 5))
        parent = SubSolution.root(A)  # layer 1 (f1) sits on v_a
        ss = evaluate_layer_candidate(
            fig3_network,
            FlowConfig(),
            parent,
            2,
            layer,
            assignment={1: C, 2: C, 3: E, 4: C, 5: C},  # f2,f3@C f4@E f5@C merger@C
            inter_paths={
                1: Path((A, B, C)),
                2: Path((A, B, C)),
                3: Path((A, B, E)),
                4: Path((A, B, C)),
            },
            inner_paths={
                1: Path.trivial(C),
                2: Path.trivial(C),
                3: Path((E, C)),
                4: Path.trivial(C),
            },
        )
        assert ss is not None
        assert ss.end_node == C
        # Multicast: A-B shared by all four inter paths, charged once.
        assert ss.link_counts[(A, B)] == 1
        assert ss.link_counts[(B, C)] == 1
        assert ss.link_counts[(B, E)] == 1
        assert ss.link_counts[(C, E)] == 1  # inner path f4 -> merger


class TestEndToEndOnFig3:
    def test_full_dag_embeds(self, fig3_network):
        """The whole Fig. 2 DAG-SFC embeds on the reconstructed network."""
        from repro.solvers import MbbeEmbedder

        dag = DagSfcBuilder().single(1).parallel(2, 3, 4, 5).parallel(6, 7).build()
        # f6/f7 and a merger must exist for layer 3; v_a and v_l host f6,
        # v_a hosts f7 + merger, so layer 3 can fold back onto v_a's region.
        r = MbbeEmbedder().embed(fig3_network, dag, A, L, FlowConfig())
        assert r.success, r.reason
        assert r.embedding.placements[(2, 5)] in (A, C)  # some merger node
