"""Tests for the extra topology families."""

import pytest

from repro.config import NetworkConfig
from repro.exceptions import ConfigurationError
from repro.network.topologies import (
    barabasi_albert,
    deploy_uniform,
    erdos_renyi,
    fat_tree,
    grid,
    ring,
    waxman,
)


class TestErdosRenyi:
    def test_connected_by_default(self):
        g = erdos_renyi(30, 0.05, rng=1)
        assert g.is_connected()

    def test_p_zero_without_patch_is_edgeless(self):
        g = erdos_renyi(10, 0.0, rng=1, ensure_connected=False)
        assert g.num_links == 0

    def test_p_one_is_complete(self):
        g = erdos_renyi(8, 1.0, rng=1, ensure_connected=False)
        assert g.num_links == 8 * 7 // 2

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi(5, 1.5)


class TestBarabasiAlbert:
    def test_connected_and_sized(self):
        g = barabasi_albert(40, 2, rng=2)
        assert g.num_nodes == 40
        assert g.is_connected()

    def test_hub_emerges(self):
        g = barabasi_albert(200, 1, rng=3)
        max_deg = max(g.degree(n) for n in g.nodes())
        assert max_deg >= 5  # scale-free graphs grow hubs

    def test_m_validation(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert(10, 0)


class TestWaxman:
    def test_connected_by_default(self):
        g = waxman(25, rng=4)
        assert g.is_connected()

    def test_prices_scale_with_distance(self):
        g = waxman(25, rng=4)
        prices = [l.price for l in g.links()]
        assert min(prices) >= 0.0
        assert max(prices) <= 40.0 * 2**0.5 + 1e-9


class TestRegular:
    def test_ring_degrees(self):
        g = ring(6)
        assert all(g.degree(n) == 2 for n in g.nodes())
        assert g.is_connected()

    def test_ring_min_size(self):
        with pytest.raises(ConfigurationError):
            ring(2)

    def test_grid_structure(self):
        g = grid(3, 4)
        assert g.num_nodes == 12
        assert g.num_links == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.is_connected()
        assert g.degree(0) == 2  # corner

    def test_fat_tree_k4(self):
        g = fat_tree(4)
        # k=4: 4 cores + 4 pods x (2 agg + 2 edge) = 20 switches.
        assert g.num_nodes == 20
        assert g.is_connected()

    def test_fat_tree_odd_k_rejected(self):
        with pytest.raises(ConfigurationError):
            fat_tree(3)


class TestDeployUniform:
    def test_deploys_on_custom_topology(self):
        g = grid(4, 4)
        cfg = NetworkConfig(size=16, connectivity=3.0, n_vnf_types=3, deploy_ratio=0.5)
        net = deploy_uniform(g, cfg, rng=5)
        for t in (1, 2, 3):
            assert net.nodes_with(t)
        assert net.merger_nodes()
        assert net.graph is g
