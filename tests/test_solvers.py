"""Behavioural tests for the four algorithms and the two oracles."""

import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.embedding.feasibility import verify_embedding
from repro.exceptions import ConfigurationError
from repro.network.cloud import CloudNetwork
from repro.network.generator import generate_network
from repro.sfc.builder import DagSfcBuilder
from repro.sfc.generator import generate_dag_sfc
from repro.solvers import (
    BbeEmbedder,
    ExactEmbedder,
    IlpEmbedder,
    MbbeEmbedder,
    MinvEmbedder,
    RanvEmbedder,
    available_solvers,
    make_solver,
)
from repro.types import MERGER_VNF

from .conftest import build_line_graph


@pytest.fixture(scope="module")
def medium_instance():
    cfg = NetworkConfig(
        size=40, connectivity=4.0, n_vnf_types=6, deploy_ratio=0.5,
        vnf_capacity=50.0, link_capacity=50.0,
    )
    net = generate_network(cfg, rng=13)
    dag = generate_dag_sfc(SfcConfig(size=5), n_vnf_types=6, rng=14)
    return net, dag


ALL_SOLVERS = [RanvEmbedder, MinvEmbedder, MbbeEmbedder, BbeEmbedder]


class TestAllSolversProduceValidEmbeddings:
    @pytest.mark.parametrize("factory", ALL_SOLVERS)
    def test_valid_and_verified(self, factory, medium_instance):
        net, dag = medium_instance
        result = factory().embed(net, dag, 0, 39, FlowConfig(), rng=7)
        assert result.success, result.reason
        verify_embedding(net, result.embedding, FlowConfig())
        assert result.total_cost > 0
        assert result.runtime >= 0

    @pytest.mark.parametrize("factory", ALL_SOLVERS)
    def test_single_vnf_sfc(self, factory, medium_instance):
        net, _ = medium_instance
        dag = generate_dag_sfc(SfcConfig(size=1), n_vnf_types=6, rng=3)
        result = factory().embed(net, dag, 5, 20, FlowConfig(), rng=8)
        assert result.success, result.reason

    @pytest.mark.parametrize("factory", ALL_SOLVERS)
    def test_source_equals_dest(self, factory, medium_instance):
        net, dag = medium_instance
        result = factory().embed(net, dag, 11, 11, FlowConfig(), rng=9)
        assert result.success, result.reason


class TestQualityOrdering:
    def test_heuristics_beat_baselines_on_average(self, medium_instance):
        net, _ = medium_instance
        wins = 0
        trials = 8
        for t in range(trials):
            dag = generate_dag_sfc(SfcConfig(size=5), n_vnf_types=6, rng=100 + t)
            mbbe = MbbeEmbedder().embed(net, dag, 0, 39, rng=t)
            minv = MinvEmbedder().embed(net, dag, 0, 39, rng=t)
            assert mbbe.success and minv.success
            if mbbe.total_cost <= minv.total_cost + 1e-6:
                wins += 1
        assert wins >= trials - 1  # MBBE at least ties MINV almost always

    def test_mbbe_close_to_bbe(self, medium_instance):
        net, _ = medium_instance
        for t in range(4):
            dag = generate_dag_sfc(SfcConfig(size=4), n_vnf_types=6, rng=200 + t)
            bbe = BbeEmbedder().embed(net, dag, 0, 39, rng=t)
            mbbe = MbbeEmbedder().embed(net, dag, 0, 39, rng=t)
            assert bbe.success and mbbe.success
            # "without an apparent performance degradation" (§4.5)
            assert mbbe.total_cost <= 1.15 * bbe.total_cost

    def test_mbbe_faster_than_bbe(self, medium_instance):
        net, _ = medium_instance
        dag = generate_dag_sfc(SfcConfig(size=5), n_vnf_types=6, rng=300)
        bbe = BbeEmbedder().embed(net, dag, 0, 39, rng=1)
        mbbe = MbbeEmbedder().embed(net, dag, 0, 39, rng=1)
        assert mbbe.runtime < bbe.runtime


class TestDeterminism:
    def test_mbbe_deterministic(self, medium_instance):
        net, dag = medium_instance
        a = MbbeEmbedder().embed(net, dag, 0, 39, rng=1)
        b = MbbeEmbedder().embed(net, dag, 0, 39, rng=2)  # rng unused by MBBE
        assert a.total_cost == pytest.approx(b.total_cost)

    def test_ranv_seed_dependent(self, medium_instance):
        net, dag = medium_instance
        a = RanvEmbedder().embed(net, dag, 0, 39, rng=1)
        b = RanvEmbedder().embed(net, dag, 0, 39, rng=1)
        c = RanvEmbedder().embed(net, dag, 0, 39, rng=2)
        assert a.total_cost == pytest.approx(b.total_cost)
        assert a.total_cost != pytest.approx(c.total_cost) or (
            a.embedding.placements == c.embedding.placements
        )

    def test_minv_deterministic(self, medium_instance):
        net, dag = medium_instance
        a = MinvEmbedder().embed(net, dag, 0, 39, rng=1)
        b = MinvEmbedder().embed(net, dag, 0, 39, rng=99)
        assert a.total_cost == pytest.approx(b.total_cost)


class TestFailureModes:
    def test_undeployed_category_fails_gracefully(self):
        g = build_line_graph(4, capacity=10.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=1.0, capacity=10.0)
        dag = DagSfcBuilder().single(1).single(2).build()  # f(2) nowhere
        for factory in ALL_SOLVERS:
            r = factory().embed(net, dag, 0, 3, FlowConfig(), rng=1)
            assert not r.success
            assert r.reason

    def test_insufficient_vnf_capacity_fails(self):
        g = build_line_graph(4, capacity=10.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=1.0, capacity=0.5)  # below rate 1.0
        dag = DagSfcBuilder().single(1).build()
        for factory in ALL_SOLVERS:
            r = factory().embed(net, dag, 0, 3, FlowConfig(rate=1.0), rng=1)
            assert not r.success

    def test_saturating_link_capacity_fails(self):
        # Bottleneck link 0-1 has capacity for one charged use; the chain
        # needs it at least twice (out to f1 at node 1 is fine, but f2 also
        # only exists at node 0: path must cross 0-1 again).
        g = build_line_graph(2, capacity=1.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=1.0, capacity=10.0)
        net.deploy(0, 2, price=1.0, capacity=10.0)
        dag = DagSfcBuilder().single(1).single(2).build()
        for factory in ALL_SOLVERS:
            r = factory().embed(net, dag, 0, 1, FlowConfig(rate=1.0), rng=1)
            assert not r.success

    def test_missing_endpoint_nodes(self, medium_instance):
        net, dag = medium_instance
        r = MbbeEmbedder().embed(net, dag, 0, 999, FlowConfig(), rng=1)
        assert not r.success


class TestMbbeKnobs:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MbbeEmbedder(x_max=0)
        with pytest.raises(ValueError):
            MbbeEmbedder(x_d=0)

    def test_paper_literal_xmax_can_fail_where_expansion_succeeds(self):
        # Deploy the needed VNF far from the source; a tiny X_max without
        # expansion cannot cover it.
        g = build_line_graph(12, capacity=10.0)
        net = CloudNetwork(g)
        net.deploy(9, 1, price=1.0, capacity=10.0)
        dag = DagSfcBuilder().single(1).build()
        strict = MbbeEmbedder(x_max=3, expand_on_failure=False)
        relaxed = MbbeEmbedder(x_max=3, expand_on_failure=True)
        assert not strict.embed(net, dag, 0, 11, rng=1).success
        r = relaxed.embed(net, dag, 0, 11, rng=1)
        assert r.success
        assert r.stats["forward_expansions"] >= 1

    def test_beam_width_bounds_frontier(self, medium_instance):
        net, dag = medium_instance
        r = MbbeEmbedder(beam_width=2).embed(net, dag, 0, 39, rng=1)
        assert r.success
        assert all(layer["subsolutions"] <= 2 for layer in r.stats["layers"])

    def test_larger_budgets_never_hurt(self, medium_instance):
        net, dag = medium_instance
        small = MbbeEmbedder(x_d=1, candidate_cap=1, merger_cap=1).embed(net, dag, 0, 39)
        big = MbbeEmbedder(x_d=6, candidate_cap=6, merger_cap=10).embed(net, dag, 0, 39)
        assert small.success and big.success
        assert big.total_cost <= small.total_cost + 1e-6


class TestBbeKnobs:
    def test_uncapped_at_least_as_good(self, medium_instance):
        net, _ = medium_instance
        dag = generate_dag_sfc(SfcConfig(size=3), n_vnf_types=6, rng=400)
        capped = BbeEmbedder(max_paths_per_pair=1, max_layer_subsolutions=5)
        free = BbeEmbedder(max_paths_per_pair=4, max_layer_subsolutions=None)
        rc = capped.embed(net, dag, 0, 39)
        rf = free.embed(net, dag, 0, 39)
        assert rc.success and rf.success
        assert rf.total_cost <= rc.total_cost + 1e-6

    def test_stats_populated(self, medium_instance):
        net, dag = medium_instance
        r = BbeEmbedder().embed(net, dag, 0, 39)
        assert r.stats["tree_size"] > 0
        assert len(r.stats["layers"]) == dag.omega


class TestRegistry:
    def test_available(self):
        names = available_solvers()
        assert {"BBE", "MBBE", "RANV", "MINV", "EXACT", "ILP"} <= set(names)

    def test_make_solver_case_insensitive(self):
        assert make_solver("mbbe").name == "MBBE"
        assert isinstance(make_solver("BBE"), BbeEmbedder)

    def test_make_solver_kwargs(self):
        s = make_solver("MBBE", x_max=10)
        assert s.x_max == 10

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_solver("nope")
