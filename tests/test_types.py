"""Unit tests for repro.types."""

from repro.types import (
    DUMMY_VNF,
    MERGER_VNF,
    Position,
    edge_key,
    is_special_vnf,
    vnf_name,
)


class TestEdgeKey:
    def test_sorts_endpoints(self):
        assert edge_key(5, 2) == (2, 5)
        assert edge_key(2, 5) == (2, 5)

    def test_idempotent_on_sorted(self):
        assert edge_key(0, 1) == (0, 1)


class TestSentinels:
    def test_dummy_is_zero_like_paper_f0(self):
        assert DUMMY_VNF == 0

    def test_merger_never_collides_with_catalog(self):
        assert MERGER_VNF < 1

    def test_is_special(self):
        assert is_special_vnf(DUMMY_VNF)
        assert is_special_vnf(MERGER_VNF)
        assert not is_special_vnf(1)
        assert not is_special_vnf(99)


class TestNames:
    def test_regular_name(self):
        assert vnf_name(3) == "f(3)"

    def test_special_names(self):
        assert vnf_name(DUMMY_VNF) == "dummy"
        assert vnf_name(MERGER_VNF) == "merger"


class TestPosition:
    def test_fields(self):
        p = Position(2, 3)
        assert p.layer == 2
        assert p.gamma == 3

    def test_is_tuple(self):
        assert Position(1, 1) == (1, 1)

    def test_hashable_distinct(self):
        assert len({Position(1, 1), Position(1, 2), Position(2, 1)}) == 3
