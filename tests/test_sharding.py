"""Multi-network (sharded) service: routing, isolation, durability (e2e).

Protocol v2 lets one :class:`~repro.service.EmbeddingServer` serve several
independent substrates, each behind its own
:class:`~repro.engine.core.EmbeddingEngine`. These tests run a real 2-shard
server on a loopback socket and assert the sharding contract: per-shard
request-id spaces, per-shard admission and fault state (chaos on one shard
never degrades another), aggregate + per-shard telemetry, and the sharded
snapshot document round-tripping through :meth:`ShardRouter.restore`.
"""

import asyncio

import pytest

from repro.config import NetworkConfig, SfcConfig
from repro.engine import ShardRouter, state_store
from repro.faults.model import FaultAction, FaultEvent, FaultTarget
from repro.network.cloud import CloudNetwork
from repro.network.generator import generate_network
from repro.service import EmbeddingServer, ServiceClient, ServiceConfig
from repro.sfc.generator import generate_dag_sfc
from repro.utils.rng import as_generator


def run(coro):
    return asyncio.run(coro)


def shard_network(seed: int) -> CloudNetwork:
    cfg = NetworkConfig(
        size=40, connectivity=4.0, n_vnf_types=6, deploy_ratio=0.5,
        vnf_capacity=4.0, link_capacity=4.0,
    )
    return generate_network(cfg, rng=seed)


def two_networks() -> dict[str, CloudNetwork]:
    return {"alpha": shard_network(17), "beta": shard_network(23)}


def make_workload(network: CloudNetwork, n: int, *, seed: int = 11):
    """n submit tuples (rid, dag, src, dst, rate, solver_seed)."""
    gen = as_generator(seed)
    out = []
    for rid in range(n):
        dag = generate_dag_sfc(SfcConfig(size=3), 6, rng=gen)
        src, dst = (int(v) for v in gen.choice(network.num_nodes, size=2, replace=False))
        out.append((rid, dag, src, dst, 1.0, int(gen.integers(2**31))))
    return out


async def wait_until(predicate, *, timeout: float = 5.0, interval: float = 0.01):
    """Poll an async predicate until it holds (asserts on timeout)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while True:
        if await predicate():
            return
        assert loop.time() < deadline, "condition not reached before timeout"
        await asyncio.sleep(interval)


class TestShardedHello:
    def test_hello_advertises_every_shard(self):
        networks = two_networks()
        config = ServiceConfig(workers=0)

        async def drive():
            async with EmbeddingServer(networks, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    return dict(client.hello)

        hello = run(drive())
        assert hello["version"] == 2
        assert hello["default_network_id"] == "alpha"
        shards = {entry["network_id"]: entry for entry in hello["shards"]}
        assert set(shards) == {"alpha", "beta"}
        for network_id, network in two_networks().items():
            assert shards[network_id]["n_nodes"] == network.num_nodes
            assert (
                shards[network_id]["network_fingerprint"]
                == state_store.network_fingerprint(network)
            )
        # Top-level identity still describes the default shard (v1 clients).
        assert hello["n_nodes"] == shards["alpha"]["n_nodes"]
        assert hello["network_fingerprint"] == shards["alpha"]["network_fingerprint"]


class TestShardedDispatch:
    def test_concurrent_clients_on_disjoint_shards(self):
        """Same request ids on two shards: independent id spaces, both served."""
        networks = two_networks()
        config = ServiceConfig(batch_size=4, queue_limit=128, workers=0)
        workloads = {
            network_id: make_workload(network, 20, seed=seed)
            for (network_id, network), seed in zip(networks.items(), (11, 12))
        }

        async def drive_shard(host, port, network_id):
            async with await ServiceClient.connect(host, port) as client:
                return await asyncio.gather(
                    *(
                        client.submit(
                            rid, dag, src, dst, rate=rate, seed=s,
                            network_id=network_id,
                        )
                        for rid, dag, src, dst, rate, s in workloads[network_id]
                    )
                )

        async def drive():
            async with EmbeddingServer(networks, config) as server:
                host, port = server.address
                per_shard = dict(
                    zip(
                        workloads,
                        await asyncio.gather(
                            *(drive_shard(host, port, nid) for nid in workloads)
                        ),
                    )
                )
                async with await ServiceClient.connect(host, port) as client:
                    stats = await client.stats()
            return per_shard, stats

        per_shard, stats = run(drive())
        for network_id, outcomes in per_shard.items():
            accepted = [o for o in outcomes if o.accepted]
            assert accepted, f"shard {network_id} must accept at least one request"
            # No duplicate_id rejections: id spaces are per shard.
            assert all(o.code != "duplicate_id" for o in outcomes)
            shard_stats = stats["shards"][network_id]
            assert shard_stats["counters"]["accepted"] == len(accepted)
            assert shard_stats["counters"]["submitted"] == len(outcomes)
            assert shard_stats["active"] == len(accepted)
        # The aggregate is the sum of the per-shard splits.
        assert stats["counters"]["accepted"] == sum(
            stats["shards"][nid]["counters"]["accepted"] for nid in per_shard
        )
        assert stats["active"] == sum(
            stats["shards"][nid]["active"] for nid in per_shard
        )

    def test_default_shard_when_network_id_omitted(self):
        networks = two_networks()
        config = ServiceConfig(workers=0)
        workload = make_workload(networks["alpha"], 4)

        async def drive():
            async with EmbeddingServer(networks, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    for rid, dag, src, dst, rate, s in workload:
                        await client.submit(rid, dag, src, dst, rate=rate, seed=s)
                    return await client.stats()

        stats = run(drive())
        assert stats["shards"]["alpha"]["counters"]["submitted"] == len(workload)
        assert stats["shards"]["beta"]["counters"]["submitted"] == 0

    def test_unknown_network_is_a_structured_rejection(self):
        networks = two_networks()
        config = ServiceConfig(workers=0)
        (rid, dag, src, dst, rate, s) = make_workload(networks["alpha"], 1)[0]

        async def drive():
            async with EmbeddingServer(networks, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    outcome = await client.submit(
                        rid, dag, src, dst, rate=rate, seed=s, network_id="gamma"
                    )
                    released = await client.release(0, network_id="gamma")
                    stats = await client.stats()
            return outcome, released, stats

        outcome, released, stats = run(drive())
        assert not outcome.accepted
        assert outcome.code == "unknown_network"
        assert released is False
        # The miss is not charged to any shard's counters.
        for network_id in networks:
            assert stats["shards"][network_id]["counters"]["submitted"] == 0


class TestShardFaultIsolation:
    def test_fault_on_one_shard_leaves_the_other_undegraded(self):
        networks = two_networks()
        config = ServiceConfig(batch_size=4, workers=0, degraded_queue_factor=0.5)
        workload = make_workload(networks["alpha"], 6)

        async def drive():
            async with EmbeddingServer(networks, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    server.inject_fault(
                        FaultEvent(
                            time=0,
                            action=FaultAction.FAIL,
                            target=FaultTarget.node(0),
                        ),
                        network_id="beta",
                    )

                    async def beta_degraded():
                        stats = await client.stats()
                        return stats["shards"]["beta"]["faults"]["degraded"]

                    await wait_until(beta_degraded)
                    stats = await client.stats()
                    # The healthy shard still serves normally.
                    outcomes = [
                        await client.submit(
                            rid, dag, src, dst, rate=rate, seed=s, network_id="alpha"
                        )
                        for rid, dag, src, dst, rate, s in workload
                    ]
                    degraded_any = server.degraded
            return stats, outcomes, degraded_any

        stats, outcomes, degraded_any = run(drive())
        assert stats["shards"]["beta"]["faults"]["degraded"] is True
        assert stats["shards"]["alpha"]["faults"]["degraded"] is False
        assert stats["faults"]["degraded"] is True  # aggregate: any shard
        assert degraded_any is True
        assert any(o.accepted for o in outcomes)
        assert all(o.code != "degraded" for o in outcomes)

    def test_recovery_clears_the_aggregate_flag(self):
        networks = two_networks()
        config = ServiceConfig(workers=0)

        async def drive():
            async with EmbeddingServer(networks, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    target = FaultTarget.node(1)
                    server.inject_fault(
                        FaultEvent(time=0, action=FaultAction.FAIL, target=target),
                        network_id="beta",
                    )

                    async def degraded():
                        return (await client.stats())["faults"]["degraded"]

                    await wait_until(degraded)
                    server.inject_fault(
                        FaultEvent(time=1, action=FaultAction.RECOVER, target=target),
                        network_id="beta",
                    )

                    async def recovered():
                        return not (await client.stats())["faults"]["degraded"]

                    await wait_until(recovered)
                    return await client.stats()

        stats = run(drive())
        assert stats["shards"]["beta"]["counters"]["faults_injected"] == 1
        assert stats["shards"]["beta"]["counters"]["recoveries"] == 1
        assert stats["shards"]["alpha"]["counters"]["faults_injected"] == 0


class TestShardedDurability:
    def test_sharded_snapshot_roundtrip(self, tmp_path):
        networks = two_networks()
        snap = str(tmp_path / "sharded.json")
        config = ServiceConfig(batch_size=4, workers=0, snapshot_path=snap)
        workloads = {
            "alpha": make_workload(networks["alpha"], 8, seed=11),
            "beta": make_workload(networks["beta"], 8, seed=12),
        }

        async def first_life():
            async with EmbeddingServer(networks, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    accepted = {nid: [] for nid in networks}
                    for network_id, workload in workloads.items():
                        for rid, dag, src, dst, rate, s in workload:
                            outcome = await client.submit(
                                rid, dag, src, dst, rate=rate, seed=s,
                                network_id=network_id,
                            )
                            if outcome.accepted:
                                accepted[network_id].append(rid)
                    reply = await client.snapshot()
                    assert reply["type"] == "snapshotted"
                pre_docs = {
                    network_id: state_store.snapshot_to_dict(engine.ledger, counters={})
                    for network_id, engine in server.router.items()
                }
            return accepted, pre_docs

        accepted, pre_docs = run(first_life())
        assert all(accepted[nid] for nid in networks), "both shards must accept"

        router, leftovers = ShardRouter.restore(networks, config.solver, snap)
        assert set(leftovers) == set(networks)
        for network_id in networks:
            assert leftovers[network_id]["submitted"] == len(workloads[network_id])
            restored_doc = state_store.snapshot_to_dict(
                router.get(network_id).ledger, counters={}
            )
            assert restored_doc == pre_docs[network_id]

        async def second_life():
            async with EmbeddingServer(
                router, config, transport_counters=leftovers
            ) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    # Live releases against the restored state on both shards.
                    for network_id, rids in accepted.items():
                        for rid in rids:
                            assert await client.release(rid, network_id=network_id)
                    return await client.stats()

        stats = run(second_life())
        for network_id in networks:
            shard_stats = stats["shards"][network_id]
            assert shard_stats["active"] == 0
            assert shard_stats["counters"]["departed"] == len(accepted[network_id])
            # Transport counters survived the restart.
            assert shard_stats["counters"]["submitted"] == len(workloads[network_id])

    def test_snapshot_restore_rejects_mismatched_shard_set(self, tmp_path):
        networks = two_networks()
        snap = str(tmp_path / "sharded.json")
        config = ServiceConfig(workers=0, snapshot_path=snap)

        async def drive():
            async with EmbeddingServer(networks, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    await client.snapshot()

        run(drive())
        from repro.exceptions import SnapshotError

        with pytest.raises(SnapshotError, match="do not match"):
            ShardRouter.restore(
                {"alpha": networks["alpha"], "gamma": networks["beta"]}, "MBBE", snap
            )
        # A single-network restore reads the plain-v1 path and refuses the
        # sharded document kind outright.
        with pytest.raises(SnapshotError, match="not a"):
            ShardRouter.restore({"alpha": networks["alpha"]}, "MBBE", snap)

    def test_drain_covers_every_shard(self):
        networks = two_networks()
        config = ServiceConfig(batch_size=4, workers=0)
        workloads = {
            "alpha": make_workload(networks["alpha"], 5, seed=11),
            "beta": make_workload(networks["beta"], 5, seed=12),
        }

        async def drive():
            async with EmbeddingServer(networks, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    await asyncio.gather(
                        *(
                            client.submit(
                                rid, dag, src, dst, rate=rate, seed=s,
                                network_id=network_id,
                            )
                            for network_id, workload in workloads.items()
                            for rid, dag, src, dst, rate, s in workload
                        )
                    )
                    drained = await client.drain()
            return drained

        drained = run(drive())
        assert drained["type"] == "drained"
        assert drained["queue_depth"] == 0
        assert set(drained["network_ids"]) == set(networks)
        total = sum(
            drained["shards"][nid]["counters"]["dispatched"] for nid in networks
        )
        assert drained["counters"]["dispatched"] == total == 10
