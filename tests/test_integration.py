"""End-to-end integration tests through the public API only."""

import numpy as np
import pytest

import repro
from repro import (
    FlowConfig,
    NetworkConfig,
    ScenarioConfig,
    SfcConfig,
    generate_dag_sfc,
    generate_network,
    make_solver,
    standard_catalog,
    to_dag_sfc,
    verify_embedding,
)
from repro.config import table2_defaults
from repro.network.topologies import barabasi_albert, deploy_uniform, fat_tree, grid, waxman
from repro.nfv.parallelism import ParallelismAnalyzer
from repro.sfc.chain import SequentialSfc
from repro.sim.experiment import SolverSpec
from repro.sim.figures import figure_by_id
from repro.sim.metrics import aggregate
from repro.sim.report import markdown_table, summary_table
from repro.sim.runner import run_experiment, run_trial


class TestPublicApiSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestChainToEmbeddingPipeline:
    def test_full_pipeline(self):
        """catalog -> chain -> parallelism -> DAG -> network -> embed -> verify."""
        catalog = standard_catalog()
        chain = SequentialSfc(list(catalog.regular_ids)[:5])
        dag = to_dag_sfc(chain, ParallelismAnalyzer(catalog), max_parallel=3)
        net = generate_network(
            NetworkConfig(size=60, connectivity=5.0, n_vnf_types=len(catalog)), rng=2
        )
        result = make_solver("MBBE").embed(net, dag, 0, 59, FlowConfig())
        assert result.success
        verify_embedding(net, result.embedding, FlowConfig())
        assert result.total_cost < make_solver("RANV").embed(
            net, dag, 0, 59, FlowConfig(), rng=1
        ).total_cost * 1.2


class TestAlternativeTopologies:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: grid(6, 6),
            lambda: fat_tree(4),
            lambda: barabasi_albert(36, 2, rng=1),
            lambda: waxman(36, rng=1),
        ],
        ids=["grid", "fat-tree", "barabasi-albert", "waxman"],
    )
    def test_embedding_on_structured_topologies(self, build):
        graph = build()
        cfg = NetworkConfig(
            size=graph.num_nodes, connectivity=3.0, n_vnf_types=6, deploy_ratio=0.6
        )
        net = deploy_uniform(graph, cfg, rng=3)
        dag = generate_dag_sfc(SfcConfig(size=4), n_vnf_types=6, rng=4)
        nodes = sorted(graph.nodes())
        for name in ("MINV", "MBBE"):
            r = make_solver(name).embed(net, dag, nodes[0], nodes[-1], FlowConfig(), rng=5)
            assert r.success, f"{name} on {graph!r}: {r.reason}"
            verify_embedding(net, r.embedding, FlowConfig())


class TestExperimentPipeline:
    def test_miniature_figure_to_report(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_SCALE", "0.05")  # 25-node networks
        spec = figure_by_id("6f", trials=2)
        records = run_experiment(spec)
        summaries = aggregate(records)
        table = summary_table(summaries, x_label=spec.x_label)
        md = markdown_table(summaries, x_label=spec.x_label)
        # Every sweep point appears in the rendered artifacts.
        for x in spec.x_values:
            assert f"{x:g}" in table
            assert f"| {x:g} |" in md

    def test_experiment_is_reproducible(self):
        scenario = ScenarioConfig(
            network=NetworkConfig(size=25, connectivity=4.0, n_vnf_types=6),
            sfc=SfcConfig(size=4),
        )
        solvers = [SolverSpec(name="MBBE"), SolverSpec(name="RANV")]
        a = run_trial(scenario, solvers, seed=12345)
        b = run_trial(scenario, solvers, seed=12345)
        for ra, rb in zip(a, b):
            assert ra.total_cost == pytest.approx(rb.total_cost)

    def test_paired_instances_across_algorithms(self):
        """All algorithms in one trial see the same network and SFC."""
        scenario = ScenarioConfig(
            network=NetworkConfig(size=25, connectivity=4.0, n_vnf_types=6),
            sfc=SfcConfig(size=4),
        )
        recs = run_trial(
            scenario,
            [SolverSpec(name="MINV"), SolverSpec(name="MBBE")],
            seed=777,
        )
        # MBBE can never exceed... no guarantee per-instance, but both must
        # have solved *some* instance with identical seed bookkeeping.
        assert recs[0].seed == recs[1].seed


class TestDefaultsSanity:
    def test_table2_runs_and_orders(self):
        sc = table2_defaults().with_network(size=100)
        rng = np.random.default_rng(0)
        net = generate_network(sc.network, rng)
        dag = generate_dag_sfc(sc.sfc, sc.network.n_vnf_types, rng)
        costs = {}
        for name in ("RANV", "MINV", "BBE", "MBBE"):
            r = make_solver(name).embed(net, dag, 0, 99, sc.flow, rng=1)
            assert r.success
            costs[name] = r.total_cost
        assert costs["MBBE"] < min(costs["RANV"], costs["MINV"])
        assert costs["BBE"] < min(costs["RANV"], costs["MINV"])
