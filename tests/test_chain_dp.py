"""Tests for the sequential-chain DP embedder and DAG flattening."""

import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.embedding.feasibility import verify_embedding
from repro.network.cloud import CloudNetwork
from repro.network.generator import generate_network
from repro.sfc.builder import DagSfcBuilder
from repro.sfc.generator import generate_dag_sfc
from repro.solvers import ChainDpEmbedder, ExactEmbedder, IlpEmbedder, flatten_to_chain

from .conftest import build_line_graph


class TestFlatten:
    def test_parallel_sets_unrolled_in_order(self, fig2_dag):
        chain = flatten_to_chain(fig2_dag)
        assert chain.omega == 7
        assert [l.parallel[0] for l in chain.layers] == [1, 2, 3, 4, 5, 6, 7]
        assert chain.num_mergers == 0

    def test_serial_dag_unchanged(self):
        dag = DagSfcBuilder().single(1).single(2).build()
        assert flatten_to_chain(dag) == dag


class TestChainDp:
    def test_hand_computed_line(self):
        # Line 0-1-2-3 price 1; f1 on nodes 1 (price 10) and 2 (price 5).
        g = build_line_graph(4, price=1.0, capacity=100.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=10.0, capacity=100.0)
        net.deploy(2, 1, price=5.0, capacity=100.0)
        dag = DagSfcBuilder().single(1).build()
        r = ChainDpEmbedder().embed(net, dag, 0, 3, FlowConfig())
        assert r.success
        # Via node 1: 10 + links(1 + 2) = 13. Via node 2: 5 + (2 + 1) = 8.
        assert r.total_cost == pytest.approx(8.0)
        assert r.embedding.placements[(1, 1)] == 2

    def test_matches_exact_on_serial_dags(self):
        """On single-VNF-per-layer DAGs, chain embedding IS the problem."""
        cfg = NetworkConfig(size=14, connectivity=3.5, n_vnf_types=5, deploy_ratio=0.6)
        for seed in (1, 2, 3):
            net = generate_network(cfg, rng=seed)
            dag = generate_dag_sfc(
                SfcConfig(size=3, max_parallel=1), n_vnf_types=5, rng=seed + 50
            )
            assert all(not l.has_merger for l in dag.layers)
            dp = ChainDpEmbedder().embed(net, dag, 0, 13, FlowConfig())
            opt = ExactEmbedder().embed(net, dag, 0, 13, FlowConfig())
            assert dp.success and opt.success
            assert dp.total_cost == pytest.approx(opt.total_cost, rel=1e-9)

    def test_result_verifies_as_serial_embedding(self):
        cfg = NetworkConfig(size=30, connectivity=4.0, n_vnf_types=8)
        net = generate_network(cfg, rng=5)
        dag = generate_dag_sfc(SfcConfig(size=6), n_vnf_types=8, rng=6)
        r = ChainDpEmbedder().embed(net, dag, 0, 29, FlowConfig())
        assert r.success
        # The returned embedding targets the flattened chain.
        assert r.embedding.dag == flatten_to_chain(dag)
        verify_embedding(net, r.embedding, FlowConfig())

    def test_serial_cheaper_than_hybrid_on_average(self):
        """No mergers to rent: the serial optimum usually undercuts MBBE."""
        from repro.solvers import MbbeEmbedder

        cfg = NetworkConfig(size=60, connectivity=5.0, n_vnf_types=8)
        net = generate_network(cfg, rng=7)
        wins = 0
        for seed in range(6):
            dag = generate_dag_sfc(SfcConfig(size=5), n_vnf_types=8, rng=seed)
            dp = ChainDpEmbedder().embed(net, dag, 0, 59, FlowConfig())
            mbbe = MbbeEmbedder().embed(net, dag, 0, 59, FlowConfig())
            assert dp.success and mbbe.success
            if dp.total_cost <= mbbe.total_cost:
                wins += 1
        assert wins >= 4

    def test_missing_category_fails(self):
        g = build_line_graph(3, capacity=10.0)
        net = CloudNetwork(g)
        dag = DagSfcBuilder().single(1).build()
        r = ChainDpEmbedder().embed(net, dag, 0, 2, FlowConfig())
        assert not r.success

    def test_capacity_overload_detected(self):
        # Same type twice, single instance with capacity for one use.
        g = build_line_graph(3, capacity=10.0)
        net = CloudNetwork(g)
        net.deploy(1, 1, price=1.0, capacity=1.0)
        dag = DagSfcBuilder().single(1).single(1).build()
        r = ChainDpEmbedder().embed(net, dag, 0, 2, FlowConfig(rate=1.0))
        assert not r.success

    def test_stage_cap_still_solves(self):
        cfg = NetworkConfig(size=30, connectivity=4.0, n_vnf_types=6)
        net = generate_network(cfg, rng=9)
        dag = generate_dag_sfc(SfcConfig(size=4), n_vnf_types=6, rng=10)
        free = ChainDpEmbedder().embed(net, dag, 0, 29, FlowConfig())
        capped = ChainDpEmbedder(max_stage_nodes=2).embed(net, dag, 0, 29, FlowConfig())
        assert capped.success
        assert capped.total_cost >= free.total_cost - 1e-9
