"""The embedding service: protocol, admission, ledger, snapshots, and e2e.

The end-to-end tests run the real asyncio server in-process (ephemeral
loopback port, inline solves) and drive it with the real client. The
central property: in strict dispatch mode the server's accept/reject
decisions and costs are identical to replaying the same requests, in the
server's decision order, through the offline
:class:`~repro.sim.online.OnlineSimulator`.

Plain ``asyncio.run`` per test — no asyncio pytest plugin is assumed.
"""

import asyncio
import json

import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.exceptions import (
    CapacityError,
    ConfigurationError,
    ProtocolError,
    SnapshotError,
)
from repro.network.cloud import CloudNetwork
from repro.network.generator import generate_network
from repro.network.reservations import Reservation, ReservationLedger
from repro.network.state import ResidualState
from repro.service import (
    EmbeddingServer,
    ServiceClient,
    ServiceConfig,
    SubmitIntent,
    available_policies,
    make_policy,
    register_policy,
)
from repro.engine import state_store
from repro.service import protocol
from repro.service.admission import (
    AdmissionPolicy,
    CheapestFirstAdmission,
    RateThresholdAdmission,
)
from repro.service.loadgen import percentile
from repro.sfc.builder import DagSfcBuilder
from repro.sfc.generator import generate_dag_sfc
from repro.sim.online import OnlineSimulator, SfcRequest
from repro.solvers.registry import make_solver
from repro.utils.rng import as_generator

from .conftest import build_line_graph


def run(coro):
    return asyncio.run(coro)


def service_network(seed: int = 17) -> CloudNetwork:
    cfg = NetworkConfig(
        size=40, connectivity=4.0, n_vnf_types=6, deploy_ratio=0.5,
        vnf_capacity=4.0, link_capacity=4.0,
    )
    return generate_network(cfg, rng=seed)


def tight_network() -> CloudNetwork:
    """0-1-2 line where one unit-rate request saturates everything."""
    net = CloudNetwork(build_line_graph(3, price=1.0, capacity=1.0))
    net.deploy(1, 1, price=5.0, capacity=1.0)
    return net


def single_vnf_dag():
    return DagSfcBuilder().single(1).build()


# -- protocol ---------------------------------------------------------------------


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"type": "stats", "msg_id": 3}
        assert protocol.decode_message(protocol.encode_message(message)) == message

    def test_decode_rejects_malformed(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            protocol.decode_message(b"{nope\n")
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode_message(b"[1,2]\n")
        with pytest.raises(ProtocolError, match="'type'"):
            protocol.decode_message(b'{"msg_id":1}\n')

    def test_hello_version_gate(self):
        hello = protocol.hello_message(
            solver="MBBE", n_nodes=4, n_vnf_types=2, network_fingerprint="ab"
        )
        protocol.check_hello(hello)
        with pytest.raises(ProtocolError, match="version"):
            protocol.check_hello({**hello, "version": 999})
        with pytest.raises(ProtocolError, match="peer"):
            protocol.check_hello({**hello, "format": "something/else"})
        with pytest.raises(ProtocolError, match="expected a hello"):
            protocol.check_hello({"type": "stats"})

    def test_submit_roundtrip(self):
        dag = single_vnf_dag()
        message = protocol.submit_message(
            msg_id=7, request_id=42, dag=dag, source=0, dest=2, rate=1.5, seed=9
        )
        intent = protocol.submit_from_message(
            protocol.decode_message(protocol.encode_message(message))
        )
        assert intent == SubmitIntent(
            request_id=42, dag=dag, source=0, dest=2,
            flow=FlowConfig(rate=1.5), seed=9, msg_id=7,
        )

    def test_submit_validation(self):
        dag = single_vnf_dag()
        good = protocol.submit_message(
            msg_id=1, request_id=1, dag=dag, source=0, dest=2
        )
        bad = dict(good)
        del bad["dag"]
        with pytest.raises(ProtocolError, match="malformed submit"):
            protocol.submit_from_message(bad)
        with pytest.raises(ProtocolError, match="rate"):
            protocol.submit_from_message({**good, "rate": 0.0})
        with pytest.raises(ProtocolError, match="malformed submit"):
            protocol.submit_from_message({**good, "dag": {"layers": "zap"}})


# -- admission --------------------------------------------------------------------


def intent(rid: int, *, rate: float = 1.0, arrival_index: int = 0) -> SubmitIntent:
    return SubmitIntent(
        request_id=rid, dag=single_vnf_dag(), source=0, dest=2,
        flow=FlowConfig(rate=rate), arrival_index=arrival_index,
    )


class TestAdmission:
    def test_registry(self):
        assert set(available_policies()) >= {"FIFO", "RATE-THRESHOLD", "CHEAPEST-FIRST"}
        assert make_policy("fifo").name == "fifo"
        with pytest.raises(ConfigurationError, match="unknown admission policy"):
            make_policy("nope")

    def test_register_policy_rejects_duplicates(self):
        class Custom(AdmissionPolicy):
            name = "custom-test"

        register_policy("custom-test", Custom)
        assert make_policy("CUSTOM-test").name == "custom-test"
        with pytest.raises(ConfigurationError, match="already registered"):
            register_policy("Custom-Test", Custom)

    def test_fifo_keeps_order(self):
        batch = [intent(i, arrival_index=i) for i in range(4)]
        assert make_policy("fifo").order(batch) == batch

    def test_rate_threshold_screens(self):
        policy = RateThresholdAdmission(max_rate=1.0)
        assert policy.screen(intent(0, rate=0.5), queue_depth=0, queue_limit=8) is None
        refusal = policy.screen(intent(1, rate=2.0), queue_depth=0, queue_limit=8)
        assert refusal is not None and "threshold" in refusal
        with pytest.raises(ConfigurationError):
            RateThresholdAdmission(max_rate=0.0)

    def test_cheapest_first_orders_by_work_then_arrival(self):
        light = intent(0, rate=1.0, arrival_index=2)
        heavy = intent(1, rate=3.0, arrival_index=0)
        tied = intent(2, rate=1.0, arrival_index=1)
        ordered = CheapestFirstAdmission().order([heavy, light, tied])
        assert [i.request_id for i in ordered] == [2, 0, 1]


# -- reservation ledger -----------------------------------------------------------


class TestReservationLedger:
    def make_ledger(self):
        return ReservationLedger(ResidualState(tight_network()))

    def test_reserve_release_roundtrip(self):
        ledger = self.make_ledger()
        res = Reservation(vnf={(1, 1): 1.0}, links={(0, 1): 1.0, (1, 2): 1.0}, cost=7.0)
        ledger.reserve(5, res)
        assert ledger.is_active(5)
        assert list(ledger.active_ids()) == [5]
        assert ledger.reservation(5) == res
        assert len(ledger) == 1
        assert ledger.release(5) == res
        assert ledger.state.link_used(0, 1) == 0.0
        assert len(ledger) == 0

    def test_duplicate_reserve_raises(self):
        ledger = self.make_ledger()
        res = Reservation(vnf={}, links={(0, 1): 0.5}, cost=1.0)
        ledger.reserve(1, res)
        with pytest.raises(ConfigurationError, match="already active"):
            ledger.reserve(1, res)

    def test_failed_reserve_rolls_back_atomically(self):
        ledger = self.make_ledger()
        # The link claim fits, the VNF claim does not: nothing may leak.
        doomed = Reservation(vnf={(1, 1): 2.0}, links={(0, 1): 1.0}, cost=1.0)
        with pytest.raises(CapacityError):
            ledger.reserve(1, doomed)
        assert not ledger.is_active(1)
        assert ledger.state.link_used(0, 1) == 0.0
        # The full capacity is still claimable afterwards.
        ledger.reserve(2, Reservation(vnf={(1, 1): 1.0}, links={(0, 1): 1.0}, cost=1.0))

    def test_release_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="not active"):
            self.make_ledger().release(3)


# -- snapshots --------------------------------------------------------------------


class TestStateStore:
    def populated_ledger(self, network):
        ledger = ReservationLedger(ResidualState(network))
        ledger.reserve(
            3, Reservation(vnf={(1, 1): 0.5}, links={(0, 1): 0.5}, cost=5.5)
        )
        ledger.reserve(1, Reservation(vnf={}, links={(1, 2): 1.0}, cost=2.0))
        return ledger

    def test_roundtrip(self, tmp_path):
        network = tight_network()
        ledger = self.populated_ledger(network)
        path = str(tmp_path / "snap.json")
        state_store.save_snapshot(path, ledger, counters={"accepted": 2})
        restored, counters = state_store.load_snapshot(path, network)
        assert counters["accepted"] == 2
        assert list(restored.active_ids()) == [1, 3]
        assert restored.reservation(3) == ledger.reservation(3)
        assert restored.state.link_used(1, 2) == ledger.state.link_used(1, 2)

    def test_fingerprint_mismatch_raises(self, tmp_path):
        network = tight_network()
        path = str(tmp_path / "snap.json")
        state_store.save_snapshot(
            path, self.populated_ledger(network), counters={}
        )
        other = CloudNetwork(build_line_graph(4, price=1.0, capacity=1.0))
        with pytest.raises(SnapshotError, match="different network"):
            state_store.load_snapshot(path, other)

    def test_overcommitted_snapshot_raises(self, tmp_path):
        network = tight_network()
        doc = state_store.snapshot_to_dict(
            self.populated_ledger(network), counters={}
        )
        doc["reservations"][0]["links"] = [[0, 1, 99.0]]
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError, match="over-commits"):
            state_store.load_snapshot(str(path), network)

    def test_header_gate(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"format": "elsewhere", "kind": "other"}))
        with pytest.raises(SnapshotError, match="document"):
            state_store.load_snapshot(str(path), tight_network())
        path.write_text("{broken")
        with pytest.raises(SnapshotError, match="JSON"):
            state_store.load_snapshot(str(path), tight_network())


# -- loadgen helpers --------------------------------------------------------------


class TestPercentile:
    def test_nearest_rank(self):
        values = tuple(float(v) for v in range(1, 11))
        assert percentile(values, 0.5) == 5.0
        assert percentile(values, 0.95) == 10.0
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 10.0

    def test_empty_and_bad_q(self):
        assert percentile((), 0.5) != percentile((), 0.5)  # NaN
        with pytest.raises(ConfigurationError):
            percentile((1.0,), 1.5)


# -- end-to-end -------------------------------------------------------------------


def make_workload(network, n: int, *, seed: int = 11):
    """n submit tuples (rid, dag, src, dst, rate, solver_seed)."""
    gen = as_generator(seed)
    out = []
    for rid in range(n):
        dag = generate_dag_sfc(SfcConfig(size=3), 6, rng=gen)
        src, dst = (int(v) for v in gen.choice(network.num_nodes, size=2, replace=False))
        out.append((rid, dag, src, dst, 1.0, int(gen.integers(2**31))))
    return out


class TestServerEndToEnd:
    def test_strict_mode_matches_offline_replay(self):
        """50 concurrent submits == offline simulator in decision order."""
        network = service_network()
        workload = make_workload(network, 50)
        config = ServiceConfig(batch_size=4, queue_limit=128, workers=0)

        async def drive():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    outcomes = await asyncio.gather(
                        *(
                            client.submit(rid, dag, src, dst, rate=rate, seed=s)
                            for rid, dag, src, dst, rate, s in workload
                        )
                    )
                    stats = await client.stats()
            return outcomes, stats

        outcomes, stats = run(drive())
        assert len(outcomes) == 50
        assert all(o.decision_index is not None for o in outcomes)
        assert sorted(o.decision_index for o in outcomes) == list(range(50))
        accepted = [o for o in outcomes if o.accepted]
        assert accepted, "workload must accept at least one request"
        assert stats["counters"]["accepted"] == len(accepted)

        # Offline replay in the server's decision order must reproduce every
        # decision and every accepted cost exactly (strict-mode guarantee).
        sim = OnlineSimulator(network, make_solver(config.solver))
        by_rid = {w[0]: w for w in workload}
        for outcome in sorted(outcomes, key=lambda o: o.decision_index):
            rid, dag, src, dst, rate, seed = by_rid[outcome.request_id]
            result = sim.submit(
                SfcRequest(rid, dag, src, dst, FlowConfig(rate=rate)), rng=seed
            )
            assert result.success == outcome.accepted
            if result.success:
                assert result.total_cost == outcome.total_cost
        assert sim.stats().total_cost_accepted == pytest.approx(
            sum(o.total_cost for o in accepted)
        )

    def test_queue_overflow_yields_structured_rejections(self):
        network = service_network()
        workload = make_workload(network, 10)
        config = ServiceConfig(queue_limit=2, batch_size=1, tick=0.2, workers=0)

        async def drive():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    outcomes = await asyncio.gather(
                        *(
                            client.submit(rid, dag, src, dst, rate=rate, seed=s)
                            for rid, dag, src, dst, rate, s in workload
                        )
                    )
                    stats = await client.stats()  # server is still healthy
            return outcomes, stats

        outcomes, stats = run(drive())
        assert len(outcomes) == 10
        shed = [o for o in outcomes if o.code == "queue_full"]
        assert shed, "overflow must surface as structured queue_full rejections"
        for o in shed:
            assert not o.accepted
            assert "limit" in o.reason
        assert stats["counters"]["shed_queue_full"] == len(shed)
        decided = [o for o in outcomes if o.code != "queue_full"]
        assert all(o.accepted or o.code in protocol.REJECT_CODES for o in decided)

    def test_speculative_batch_conflicts_are_structured(self):
        # Only one embedding fits the tight line network: a speculative
        # 3-batch must accept exactly one and reject the rest as conflicts.
        network = tight_network()
        config = ServiceConfig(
            batch_size=3, tick=0.2, speculative=True, workers=0, queue_limit=8
        )

        async def drive():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    return await asyncio.gather(
                        *(
                            client.submit(rid, single_vnf_dag(), 0, 2, seed=rid)
                            for rid in range(3)
                        )
                    )

        outcomes = run(drive())
        assert sum(o.accepted for o in outcomes) == 1
        conflicts = [o for o in outcomes if o.code == "capacity_conflict"]
        assert len(conflicts) == 2

    def test_duplicate_and_draining_rejections(self):
        network = tight_network()
        config = ServiceConfig(workers=0)

        async def drive():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    first = await client.submit(7, single_vnf_dag(), 0, 2, seed=1)
                    dup = await client.submit(7, single_vnf_dag(), 0, 2, seed=1)
                    await client.drain()
                    late = await client.submit(8, single_vnf_dag(), 0, 2, seed=1)
            return first, dup, late

        first, dup, late = run(drive())
        assert first.accepted
        assert dup.code == "duplicate_id" and not dup.accepted
        assert late.code == "draining" and not late.accepted

    def test_admission_policy_rejections(self):
        network = tight_network()
        config = ServiceConfig(workers=0, admission="rate-threshold")

        async def drive():
            async with EmbeddingServer(
                network, config, policy=RateThresholdAdmission(max_rate=0.75)
            ) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    return await client.submit(
                        1, single_vnf_dag(), 0, 2, rate=1.0, seed=1
                    )

        outcome = run(drive())
        assert outcome.code == "admission" and not outcome.accepted

    def test_release_roundtrip_over_the_wire(self):
        network = tight_network()
        config = ServiceConfig(workers=0)

        async def drive():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    first = await client.submit(1, single_vnf_dag(), 0, 2, seed=1)
                    blocked = await client.submit(2, single_vnf_dag(), 0, 2, seed=1)
                    ok = await client.release(1)
                    again = await client.release(1)
                    second = await client.submit(3, single_vnf_dag(), 0, 2, seed=1)
            return first, blocked, ok, again, second

        first, blocked, ok, again, second = run(drive())
        assert first.accepted
        assert blocked.code == "no_solution"
        assert ok is True
        assert again is False
        assert second.accepted, "released capacity must be reusable"

    def test_malformed_submit_yields_error_reply(self):
        network = tight_network()
        config = ServiceConfig(workers=0)

        async def drive():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    with pytest.raises(ProtocolError, match="rate"):
                        await client.submit(1, single_vnf_dag(), 0, 2, rate=-1.0)

        run(drive())

    def test_snapshot_restart_resumes_identical_state(self, tmp_path):
        """Kill + restart from snapshot: same reservations, live releases."""
        network = service_network()
        workload = make_workload(network, 8)
        snap = str(tmp_path / "state.json")
        config = ServiceConfig(workers=0, batch_size=4, snapshot_path=snap)

        async def first_life():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    outcomes = await asyncio.gather(
                        *(
                            client.submit(rid, dag, src, dst, rate=rate, seed=s)
                            for rid, dag, src, dst, rate, s in workload
                        )
                    )
                    reply = await client.snapshot()
                    assert reply["type"] == "snapshotted"
                pre_doc = state_store.snapshot_to_dict(server.ledger, counters={})
            return outcomes, pre_doc

        outcomes, pre_doc = run(first_life())
        accepted_ids = sorted(o.request_id for o in outcomes if o.accepted)
        assert accepted_ids, "restart test needs at least one accepted request"

        ledger, counters = state_store.load_snapshot(snap, network)
        post_doc = state_store.snapshot_to_dict(ledger, counters={})
        assert post_doc["reservations"] == pre_doc["reservations"]
        assert post_doc["network_fingerprint"] == pre_doc["network_fingerprint"]
        assert list(ledger.active_ids()) == accepted_ids
        assert counters["accepted"] == len(accepted_ids)

        async def second_life():
            async with EmbeddingServer(
                network, config, ledger=ledger, counters=counters
            ) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    dup = await client.submit(
                        accepted_ids[0], single_vnf_dag(), 0, 2, seed=1
                    )
                    ok = await client.release(accepted_ids[0])
                    stats = await client.stats()
            return dup, ok, stats

        dup, ok, stats = run(second_life())
        assert dup.code == "duplicate_id"
        assert ok is True
        assert stats["counters"]["accepted"] == len(accepted_ids)
        assert stats["active"] == len(accepted_ids) - 1

    def test_drain_shutdown_stops_the_server(self):
        network = tight_network()
        config = ServiceConfig(workers=0)

        async def drive():
            server = EmbeddingServer(network, config)
            host, port = await server.start()
            serve_task = asyncio.create_task(server.serve_until_stopped())
            async with await ServiceClient.connect(host, port) as client:
                reply = await client.drain(shutdown=True)
                assert reply["type"] == "drained"
            await asyncio.wait_for(serve_task, timeout=5.0)

        run(drive())

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(queue_limit=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(tick=-0.1)
        with pytest.raises(ConfigurationError):
            ServiceConfig(workers=-1)


# -- event-loop offload regressions -----------------------------------------------


class TestAsyncOffload:
    """Snapshot writes and fault repairs must not run on the event loop.

    These guard the RPL701 fixes: each test makes the offloaded operation
    artificially slow and asserts a heartbeat coroutine keeps ticking, which
    fails immediately if the call ever moves back onto the loop. (The suite
    also runs under the runtime sanitizer, which enforces the same property
    at its default threshold.)
    """

    @staticmethod
    async def _heartbeat(stop: "asyncio.Event", interval: float = 0.02) -> float:
        """Worst observed delay beyond the expected sleep, in seconds."""
        loop = asyncio.get_running_loop()
        worst = 0.0
        last = loop.time()
        while not stop.is_set():
            await asyncio.sleep(interval)
            now = loop.time()
            worst = max(worst, now - last - interval)
            last = now
        return worst

    def test_snapshot_write_keeps_the_loop_responsive(self, tmp_path, monkeypatch):
        import time

        network = service_network()
        snap = str(tmp_path / "state.json")
        config = ServiceConfig(workers=0, snapshot_path=snap)

        async def drive() -> float:
            async with EmbeddingServer(network, config) as server:
                real_save = server.router.save_snapshot

                def slow_save(path, **kwargs):
                    time.sleep(0.4)  # exaggerate the disk write
                    return real_save(path, **kwargs)

                monkeypatch.setattr(server.router, "save_snapshot", slow_save)
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    stop = asyncio.Event()
                    beat = asyncio.create_task(self._heartbeat(stop))
                    reply = await client.snapshot()
                    stop.set()
                    worst = await beat
                assert reply["type"] == "snapshotted"
            return worst

        worst = run(drive())
        assert worst < 0.25, (
            f"loop was unresponsive for {worst:.3f}s during snapshot; "
            "the write must happen in a worker thread"
        )

    def test_snapshot_under_load_is_consistent_and_nonblocking(self, tmp_path):
        """Snapshot taken mid-stream parks dispatchers, not the loop."""
        network = service_network()
        workload = make_workload(network, 12)
        snap = str(tmp_path / "state.json")
        config = ServiceConfig(workers=0, batch_size=3, snapshot_path=snap)

        async def drive():
            async with EmbeddingServer(network, config) as server:
                host, port = server.address
                async with await ServiceClient.connect(host, port) as client:
                    submits = [
                        asyncio.create_task(
                            client.submit(rid, dag, src, dst, rate=rate, seed=s)
                        )
                        for rid, dag, src, dst, rate, s in workload
                    ]
                    reply = await client.snapshot()
                    outcomes = await asyncio.gather(*submits)
                assert reply["type"] == "snapshotted"
            return outcomes

        outcomes = run(drive())
        # every submit got a decision despite the concurrent snapshot...
        assert len(outcomes) == len(workload)
        # ...and the snapshot file is loadable against the same substrate
        # (a torn write would fail the fingerprint/capacity validation).
        ledger, _counters = state_store.load_snapshot(snap, network)
        assert set(ledger.active_ids()) <= {rid for rid, *_ in workload}

    def test_fault_repair_keeps_the_loop_responsive(self, monkeypatch):
        import time

        from repro.engine import EmbeddingEngine
        from repro.faults.model import FaultAction, FaultEvent, FaultTarget

        network = service_network()
        config = ServiceConfig(workers=0)
        real_apply = EmbeddingEngine.apply_fault

        def slow_apply(engine, event, rng=None, *, auto_seed=False):
            time.sleep(0.4)  # exaggerate the repair-ladder solve
            return real_apply(engine, event, rng, auto_seed=auto_seed)

        monkeypatch.setattr(EmbeddingEngine, "apply_fault", slow_apply)

        async def drive() -> float:
            async with EmbeddingServer(network, config) as server:
                stop = asyncio.Event()
                beat = asyncio.create_task(self._heartbeat(stop))
                server.inject_fault(
                    FaultEvent(
                        time=0,
                        action=FaultAction.FAIL,
                        target=FaultTarget.node(0),
                    )
                )
                await asyncio.sleep(0.55)  # let the fault fold in
                stop.set()
                return await beat

        worst = run(drive())
        assert worst < 0.25, (
            f"loop was unresponsive for {worst:.3f}s during fault repair; "
            "engine.apply_fault must run in a worker thread"
        )
