"""The reprolint static-analysis suite: fixtures, live-tree gate, CLI wiring."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint import DEFAULT_CONFIG, run_paths
from tools.reprolint.cli import main as reprolint_main
from tools.reprolint.engine import META_RULES, all_rules
from tools.reprolint.suppressions import collect_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"
SRC = REPO_ROOT / "src" / "repro"


def codes_for(target: Path) -> list[str]:
    diagnostics, _ = run_paths([target])
    return sorted(d.code for d in diagnostics)


#: fixture path (relative to tests/lint_fixtures) -> exact expected finding codes.
EXPECTED: dict[str, list[str]] = {
    "fail_rpl101_stdlib_random.py": ["RPL101", "RPL101"],
    "fail_rpl102_module_level_rng.py": ["RPL102", "RPL102"],
    "fail_rpl103_unseeded_default_rng.py": ["RPL103", "RPL103"],
    "fail_rpl104_legacy_numpy.py": ["RPL104", "RPL104", "RPL104"],
    "fail_rpl201_private_state.py": ["RPL201", "RPL201", "RPL201"],
    "fail_rpl401_mutable_default.py": ["RPL401", "RPL401", "RPL401"],
    "fail_rpl501_float_cost_eq.py": ["RPL501", "RPL501"],
    "fail_rpl211_counts_full_copy.py": ["RPL211", "RPL211", "RPL211"],
    "fail_rpl214_direct_referee.py": ["RPL214", "RPL214", "RPL214"],
    "fail_rpl001_reasonless_suppression.py": ["RPL001"],
    "fail_rpl002_unknown_code.py": ["RPL002"],
    "fail_rpl003_syntax_error.py": ["RPL003"],
    "fail_rpl004_unused_suppression.py": ["RPL004"],
    "solvers/fail_rpl202_unbalanced_reserve.py": ["RPL202"],
    "service/fail_rpl601_direct_imports.py": ["RPL601", "RPL601", "RPL601"],
    "service/fail_rpl212_transport_append.py": ["RPL212", "RPL212"],
    "service/fail_rpl213_manual_migration.py": ["RPL213", "RPL213"],
    "pass_rpl213_engine_migrate.py": [],
    "pass_rpl214_via_verify.py": [],
    "regpack": ["RPL301", "RPL301"],
    "fail_rpl701_blocking_in_async.py": ["RPL701", "RPL701"],
    "fail_rpl702_shared_mutation.py": ["RPL702", "RPL702"],
    "fail_rpl703_fire_and_forget.py": ["RPL703"],
    "fail_rpl704_lock_discipline.py": ["RPL704", "RPL704"],
    "fail_rpl705_await_in_window.py": ["RPL705"],
    # clean fixtures:
    "pass_rng_discipline.py": [],
    "pass_counts_cow.py": [],
    "solvers/counts.py": [],
    "pass_suppression_with_reason.py": [],
    "pass_tolerance_helper.py": [],
    "cli.py": [],
    "solvers/pass_rpl202_guarded.py": [],
    "service/pass_rpl601_via_engine.py": [],
    "engine/core.py": [],
    "regpack/solvers/pass_abstract_skipped.py": [],
    "pass_rpl701_executor_hop.py": [],
    "pass_rpl702_dispatcher_queue.py": [],
    "pass_rpl703_stored_task.py": [],
    "pass_rpl704_lock_discipline.py": [],
    "pass_rpl705_window_closed.py": [],
}


@pytest.mark.parametrize("relpath", sorted(EXPECTED))
def test_fixture_findings(relpath: str) -> None:
    assert codes_for(FIXTURES / relpath) == EXPECTED[relpath]


@pytest.mark.parametrize(
    "relpath",
    sorted(p for p, codes in EXPECTED.items() if codes),
)
def test_failing_fixtures_exit_nonzero(relpath: str, capsys: pytest.CaptureFixture[str]) -> None:
    assert reprolint_main([str(FIXTURES / relpath)]) == 1
    out = capsys.readouterr().out
    assert EXPECTED[relpath][0] in out


@pytest.mark.parametrize(
    "relpath",
    sorted(p for p, codes in EXPECTED.items() if not codes),
)
def test_passing_fixtures_exit_zero(relpath: str, capsys: pytest.CaptureFixture[str]) -> None:
    assert reprolint_main([str(FIXTURES / relpath)]) == 0
    assert "clean" in capsys.readouterr().out


# -- the live tree is the real acceptance gate ---------------------------------------


def test_live_tree_is_clean() -> None:
    diagnostics, files_checked = run_paths([SRC])
    assert files_checked > 70
    assert [d.format() for d in diagnostics] == []


def test_reprolint_is_clean_on_itself() -> None:
    diagnostics, _ = run_paths([REPO_ROOT / "tools"])
    assert [d.format() for d in diagnostics] == []


def test_live_tree_has_no_reasonless_suppressions() -> None:
    for path in sorted(SRC.rglob("*.py")):
        for sup in collect_suppressions(path.read_text(encoding="utf-8")):
            assert sup.has_reason, f"{path}:{sup.line}: suppression without reason"


def test_module_invocation_matches_acceptance_command() -> None:
    proc = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


# -- registry conformance, import-based (complements the AST rule) -------------------


def test_every_embedder_subclass_is_reachable_from_registry() -> None:
    from repro.embedding.base import Embedder
    from repro.solvers import registry as solver_registry
    import repro.solvers  # noqa: F401  (import the package so subclasses exist)

    def concrete_subclasses(cls: type) -> set[type]:
        out: set[type] = set()
        for sub in cls.__subclasses__():
            out.add(sub)
            out |= concrete_subclasses(sub)
        return out

    produced: set[type] = set()
    for name in solver_registry.available_solvers():
        solver = solver_registry.make_solver(name)
        produced.add(type(solver))
        inner = getattr(solver, "base", None)
        if inner is not None:
            produced.add(type(inner))

    for sub in concrete_subclasses(Embedder):
        reachable = sub in produced or any(issubclass(p, sub) for p in produced)
        assert reachable, (
            f"Embedder subclass {sub.__name__} is not reachable from the solver "
            "registry; register it or mark it abstract"
        )


# -- output formats and CLI surface ---------------------------------------------------


def test_json_output_schema(capsys: pytest.CaptureFixture[str]) -> None:
    target = FIXTURES / "fail_rpl401_mutable_default.py"
    assert reprolint_main([str(target), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "reprolint"
    assert payload["files_checked"] == 1
    codes = [f["code"] for f in payload["findings"]]
    assert codes == EXPECTED["fail_rpl401_mutable_default.py"]
    first = payload["findings"][0]
    assert set(first) == {"path", "line", "col", "code", "message"}


def test_github_output_annotations(capsys: pytest.CaptureFixture[str]) -> None:
    target = FIXTURES / "fail_rpl701_blocking_in_async.py"
    assert reprolint_main([str(target), "--format", "github"]) == 1
    lines = capsys.readouterr().out.strip().splitlines()
    errors = [ln for ln in lines if ln.startswith("::error ")]
    assert len(errors) == len(EXPECTED["fail_rpl701_blocking_in_async.py"])
    first = errors[0]
    assert "file=" in first and "line=" in first and "col=" in first
    assert "title=reprolint RPL701" in first
    # the annotated path must be usable by Actions (the path as given)
    assert "fail_rpl701_blocking_in_async.py" in first
    assert lines[-1].startswith("::notice title=reprolint::")


def test_github_output_clean_run(capsys: pytest.CaptureFixture[str]) -> None:
    assert reprolint_main([str(FIXTURES / "cli.py"), "--format", "github"]) == 0
    out = capsys.readouterr().out
    assert "::error" not in out
    assert "::notice title=reprolint::clean" in out


def test_github_output_escapes_message_newlines() -> None:
    from tools.reprolint.diagnostics import Diagnostic, format_github

    diag = Diagnostic(path="a.py", line=1, col=0, code="RPL999", message="two\nlines: 50%")
    out = format_github([diag], 1)
    first = out.splitlines()[0]
    assert "\n" not in first or out.count("::error") == 1
    assert "two%0Alines" in first and "50%25" in first


def test_select_restricts_rules() -> None:
    target = FIXTURES / "fail_rpl104_legacy_numpy.py"
    diagnostics, _ = run_paths([target], select=["RPL101"])
    assert diagnostics == []
    diagnostics, _ = run_paths([target], select=["RPL104"])
    assert {d.code for d in diagnostics} == {"RPL104"}


def test_select_skips_the_unused_suppression_audit(tmp_path: Path) -> None:
    """RPL004 only audits full runs: under --select a suppression for an
    unselected rule is *expected* to silence nothing."""
    mod = tmp_path / "mod.py"
    mod.write_text(
        "import random  # reprolint: disable=RPL101 -- needed here\n",
        encoding="utf-8",
    )
    # full run: the suppression is used, no RPL004 either
    diagnostics, _ = run_paths([mod])
    assert diagnostics == []
    # selected run that never raises RPL101: the suppression silences
    # nothing, but the audit must not fire (it needs the full pack to know)
    diagnostics, _ = run_paths([mod], select=["RPL401"])
    assert diagnostics == []


def test_full_run_still_audits_unused_suppressions(tmp_path: Path) -> None:
    mod = tmp_path / "mod.py"
    mod.write_text(
        "x = 1  # reprolint: disable=RPL101 -- stale leftover\n",
        encoding="utf-8",
    )
    diagnostics, _ = run_paths([mod])
    assert [d.code for d in diagnostics] == ["RPL004"]


def test_unknown_select_is_a_usage_error(capsys: pytest.CaptureFixture[str]) -> None:
    assert reprolint_main([str(FIXTURES / "cli.py"), "--select", "RPL999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(capsys: pytest.CaptureFixture[str]) -> None:
    assert reprolint_main([str(FIXTURES / "no_such_file.py")]) == 2
    assert "error" in capsys.readouterr().err


def test_list_rules_covers_the_documented_catalog(capsys: pytest.CaptureFixture[str]) -> None:
    assert reprolint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in list(all_rules()) + list(META_RULES):
        assert code in out
    # the codes documented in docs/static_analysis.md all exist
    doc = (REPO_ROOT / "docs" / "static_analysis.md").read_text(encoding="utf-8")
    for code in list(all_rules()) + list(META_RULES):
        assert code in doc, f"{code} missing from docs/static_analysis.md"


def test_dag_sfc_lint_subcommand(capsys: pytest.CaptureFixture[str]) -> None:
    from repro.cli import main as dag_sfc_main

    assert dag_sfc_main(["lint", str(FIXTURES / "pass_rng_discipline.py")]) == 0
    assert "clean" in capsys.readouterr().out
    assert dag_sfc_main(["lint", str(FIXTURES / "fail_rpl101_stdlib_random.py")]) == 1
    assert "RPL101" in capsys.readouterr().out


# -- suppression semantics ------------------------------------------------------------


def test_reasoned_suppression_silences_and_counts_as_used(tmp_path: Path) -> None:
    mod = tmp_path / "mod.py"
    mod.write_text(
        "import random  # reprolint: disable=RPL101 -- vendored example\n",
        encoding="utf-8",
    )
    diagnostics, _ = run_paths([mod])
    assert diagnostics == []


def test_reasonless_suppression_still_fails_the_run(tmp_path: Path) -> None:
    mod = tmp_path / "mod.py"
    mod.write_text("import random  # reprolint: disable=RPL101\n", encoding="utf-8")
    diagnostics, _ = run_paths([mod])
    assert [d.code for d in diagnostics] == ["RPL001"]


def test_suppression_only_covers_its_own_line(tmp_path: Path) -> None:
    mod = tmp_path / "mod.py"
    mod.write_text(
        "import random  # reprolint: disable=RPL101 -- first import only\n"
        "from random import choice\n",
        encoding="utf-8",
    )
    diagnostics, _ = run_paths([mod])
    assert [d.code for d in diagnostics] == ["RPL101"]
    assert diagnostics[0].line == 2


def test_meta_findings_cannot_be_suppressed(tmp_path: Path) -> None:
    mod = tmp_path / "mod.py"
    mod.write_text(
        "import random  # reprolint: disable=RPL101,RPL001\n",
        encoding="utf-8",
    )
    diagnostics, _ = run_paths([mod])
    assert [d.code for d in diagnostics] == ["RPL001"]


# -- config-driven path policy --------------------------------------------------------


def test_entry_point_policy_follows_config(tmp_path: Path) -> None:
    lib = tmp_path / "library.py"
    lib.write_text(
        "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n",
        encoding="utf-8",
    )
    assert [d.code for d in (run_paths([lib]))[0]] == ["RPL103"]
    entry = tmp_path / "cli.py"
    entry.write_text(
        "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n",
        encoding="utf-8",
    )
    assert (run_paths([entry]))[0] == []
    sim_dir = tmp_path / "sim"
    sim_dir.mkdir()
    runner = sim_dir / "runner.py"
    runner.write_text(
        "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n",
        encoding="utf-8",
    )
    assert (run_paths([runner]))[0] == []


def test_default_config_matches_repo_conventions() -> None:
    assert "sim" in DEFAULT_CONFIG.rng_entry_dirs
    assert "network/state.py" in DEFAULT_CONFIG.state_module_suffixes
    assert "solvers" in DEFAULT_CONFIG.solver_dir_names
    assert "solvers/counts.py" in DEFAULT_CONFIG.counts_module_suffixes
    assert set(DEFAULT_CONFIG.counts_attrs) == {"vnf_counts", "link_counts"}
    assert DEFAULT_CONFIG.registry_dict == "_REGISTRY"
