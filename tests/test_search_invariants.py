"""Property tests of the §4.2–4.4 structural invariants.

The paper states several relationships its correctness rests on:
``L_l ⊆ F^{F,l}`` (forward coverage), ``L_l ⊆ F^{B,l}`` (backward
coverage), ``V^{B,l} ⊆ V^{F,l}`` (backward within forward), shortest-hop
path lengths equal ring depth, and sub-solution chains accumulating cost
exactly. We check them on randomized instances.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.embedding.costing import compute_cost
from repro.network.generator import generate_network
from repro.network.shortest import bfs_rings
from repro.sfc.generator import generate_dag_sfc
from repro.solvers import BbeEmbedder, MbbeEmbedder
from repro.solvers.common import coverage_stop, vnf_admit
from repro.solvers.searchtree import SearchTree
from repro.types import MERGER_VNF

nets = st.builds(
    lambda seed: generate_network(
        NetworkConfig(
            size=35, connectivity=4.0, n_vnf_types=5, deploy_ratio=0.5,
            vnf_capacity=50.0, link_capacity=50.0,
        ),
        rng=seed,
    ),
    seed=st.integers(0, 5000),
)

MODERATE = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@given(net=nets, sfc_seed=st.integers(0, 5000), start=st.integers(0, 34))
@MODERATE
def test_forward_backward_containment(net, sfc_seed, start):
    """Run one layer's forward+backward search; check the paper's set relations."""
    dag = generate_dag_sfc(SfcConfig(size=3), n_vnf_types=5, rng=sfc_seed)
    layer = dag.layer(1)
    admit = vnf_admit(net, {}, rate=1.0)
    stop = coverage_stop(net, layer.required_types, admit)
    rings = bfs_rings(net.graph, start, stop=stop)
    if not rings.complete:
        return  # category missing in this instance; nothing to check
    fst = SearchTree(net, rings)
    # L_l ⊆ F^{F,l}
    assert set(layer.required_types) <= set(fst.covered_vnfs())
    if not layer.has_merger:
        return
    fst_nodes = fst.node_set
    for merger_node in fst.nodes_hosting(MERGER_VNF):
        bstop = coverage_stop(net, layer.parallel, admit)
        brings = bfs_rings(
            net.graph, merger_node, stop=bstop, allowed=lambda n: n in fst_nodes
        )
        bst = SearchTree(net, brings)
        # V^{B,l} ⊆ V^{F,l} always.
        assert bst.node_set <= fst_nodes
        if brings.complete:
            # L_l ⊆ F^{B,l} when the backward search covered.
            assert set(layer.parallel) <= set(bst.covered_vnfs())


@given(net=nets, start=st.integers(0, 34), seed=st.integers(0, 1000))
@MODERATE
def test_tree_paths_have_ring_depth_hops(net, start, seed):
    rings = bfs_rings(net.graph, start, stop=lambda s: len(s) >= 20)
    tree = SearchTree(net, rings)
    rng = np.random.default_rng(seed)
    nodes = sorted(tree.node_set)
    for node in rng.choice(nodes, size=min(5, len(nodes)), replace=False):
        node = int(node)
        depth = rings.depth_of(node)
        for path in tree.enumerate_root_paths(node, max_paths=3):
            assert path.length == depth
            assert path.source == start and path.target == node
            path.validate(net.graph)


@given(net=nets, sfc_seed=st.integers(0, 5000))
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_subsolution_chain_cost_accumulates_exactly(net, sfc_seed):
    """Each solver's internal cumulative cost equals the referee's total."""
    dag = generate_dag_sfc(SfcConfig(size=4), n_vnf_types=5, rng=sfc_seed)
    for solver in (MbbeEmbedder(), BbeEmbedder()):
        r = solver.embed(net, dag, 0, 34, FlowConfig())
        assert r.success, r.reason
        # compute_cost re-derives the objective from scratch; the search's
        # incremental bookkeeping must agree to the cent.
        again = compute_cost(net, r.embedding, FlowConfig())
        assert again.total == pytest.approx(r.total_cost)
        # alpha maps are internally consistent with the embedding.
        assert again.alpha_vnf == r.cost.alpha_vnf
        assert again.alpha_link == r.cost.alpha_link


@given(net=nets, sfc_seed=st.integers(0, 5000))
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_mbbe_tree_size_respects_xd_bound(net, sfc_seed):
    """The X_d-tree never stores more than the k-bound of §4.5."""
    from repro.analysis.complexity import mbbe_k_factor

    dag = generate_dag_sfc(SfcConfig(size=5), n_vnf_types=5, rng=sfc_seed)
    solver = MbbeEmbedder(x_d=3)
    r = solver.embed(net, dag, 0, 34, FlowConfig())
    if not r.success:
        return
    if r.stats.get("escalations"):
        return  # escalation rescales the budgets; the bound shifts
    k = mbbe_k_factor(3, dag.omega)
    # Tree layers 0..omega hold at most k nodes total; layer omega+1 adds
    # at most one leaf per omega-layer sub-solution.
    assert r.stats["tree_size"] <= k + 3 ** dag.omega
