"""Unit tests for Yen's k-shortest paths, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.config import NetworkConfig
from repro.exceptions import ConfigurationError, NodeNotFoundError
from repro.network.generator import generate_network
from repro.network.ksp import k_shortest_paths

from .conftest import build_line_graph, build_square_graph


class TestBasics:
    def test_k_must_be_positive(self, line5):
        with pytest.raises(ConfigurationError):
            k_shortest_paths(line5, 0, 4, 0)

    def test_missing_nodes(self, line5):
        with pytest.raises(NodeNotFoundError):
            k_shortest_paths(line5, 99, 0, 1)
        with pytest.raises(NodeNotFoundError):
            k_shortest_paths(line5, 0, 99, 1)

    def test_same_node(self, line5):
        paths = k_shortest_paths(line5, 2, 2, 3)
        assert len(paths) == 1 and paths[0].is_trivial

    def test_line_has_single_path(self, line5):
        paths = k_shortest_paths(line5, 0, 4, 5)
        assert len(paths) == 1
        assert paths[0].nodes == (0, 1, 2, 3, 4)

    def test_unreachable_returns_empty(self):
        g = build_line_graph(2)
        g.add_node(7)
        assert k_shortest_paths(g, 0, 7, 3) == []


class TestOrderingAndDistinctness:
    def test_square_paths_sorted_by_cost(self):
        g = build_square_graph(price=1.0)
        paths = k_shortest_paths(g, 0, 2, 3)
        costs = [p.cost(g) for p in paths]
        assert costs == sorted(costs)
        assert len({p.nodes for p in paths}) == len(paths)

    def test_all_paths_simple(self):
        g = build_square_graph()
        for p in k_shortest_paths(g, 0, 2, 5):
            assert p.is_simple()

    def test_link_filter_respected(self):
        g = build_square_graph(price=1.0)
        paths = k_shortest_paths(g, 0, 2, 5, link_filter=lambda l: l.key != (0, 2))
        assert all((0, 2) not in p.edge_set() for p in paths)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", [3, 17])
    def test_matches_networkx_shortest_simple_paths(self, seed):
        net = generate_network(
            NetworkConfig(size=25, connectivity=4.0, n_vnf_types=3), rng=seed
        )
        g = net.graph
        nxg = nx.Graph()
        for link in g.links():
            nxg.add_edge(link.u, link.v, weight=link.price)
        k = 5
        ours = k_shortest_paths(g, 0, 10, k)
        ref_iter = nx.shortest_simple_paths(nxg, 0, 10, weight="weight")
        ref_costs = []
        for _, path in zip(range(k), ref_iter):
            ref_costs.append(
                sum(nxg[u][v]["weight"] for u, v in zip(path, path[1:]))
            )
        our_costs = [p.cost(g) for p in ours]
        assert len(our_costs) == len(ref_costs)
        for a, b in zip(our_costs, ref_costs):
            assert a == pytest.approx(b)
