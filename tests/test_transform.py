"""Tests for the sequential → DAG-SFC transformation (Fig. 2 procedure)."""

import pytest

from repro.exceptions import TransformError
from repro.nfv.actions import ActionProfile, PacketField
from repro.nfv.parallelism import ParallelismAnalyzer
from repro.nfv.vnf import VnfCatalog, VnfDescriptor, standard_catalog
from repro.sfc.chain import SequentialSfc
from repro.sfc.transform import to_dag_sfc


def catalog_all_parallel(n: int) -> VnfCatalog:
    """Every category read-only and disjoint -> fully parallelizable."""
    fields = list(PacketField)
    return VnfCatalog(
        {
            i: VnfDescriptor(
                type_id=i,
                name=f"ro{i}",
                profile=ActionProfile.of(reads=(fields[i % len(fields)],)),
            )
            for i in range(1, n + 1)
        }
    )


def catalog_all_sequential(n: int) -> VnfCatalog:
    """Every category writes the same field -> nothing parallelizable."""
    return VnfCatalog(
        {
            i: VnfDescriptor(
                type_id=i,
                name=f"w{i}",
                profile=ActionProfile.of(writes=(PacketField.TTL,)),
            )
            for i in range(1, n + 1)
        }
    )


class TestGrouping:
    def test_fully_parallel_chain_collapses(self):
        cat = catalog_all_parallel(4)
        dag = to_dag_sfc(SequentialSfc([1, 2, 3, 4]), ParallelismAnalyzer(cat))
        assert dag.omega == 1
        assert dag.layer(1).parallel == (1, 2, 3, 4)

    def test_fully_sequential_chain_stays(self):
        cat = catalog_all_sequential(4)
        dag = to_dag_sfc(SequentialSfc([1, 2, 3, 4]), ParallelismAnalyzer(cat))
        assert dag.omega == 4
        assert all(not l.has_merger for l in dag.layers)

    def test_max_parallel_cap(self):
        cat = catalog_all_parallel(6)
        dag = to_dag_sfc(
            SequentialSfc([1, 2, 3, 4, 5, 6]), ParallelismAnalyzer(cat), max_parallel=3
        )
        assert tuple(l.phi for l in dag.layers) == (3, 3)

    def test_duplicate_category_splits_layer(self):
        cat = catalog_all_parallel(3)
        dag = to_dag_sfc(SequentialSfc([1, 2, 1]), ParallelismAnalyzer(cat))
        # The second f(1) cannot join a set already containing f(1).
        assert dag.omega >= 2
        assert dag.size == 3

    def test_preserves_order_across_layers(self):
        cat = standard_catalog()
        chain = SequentialSfc(list(cat.regular_ids)[:6])
        dag = to_dag_sfc(chain, ParallelismAnalyzer(cat))
        flat = [v for l in dag.layers for v in sorted(l.parallel, key=chain.vnfs.index)]
        assert sorted(flat) == sorted(chain.vnfs)
        assert dag.size == chain.size

    def test_single_vnf_chain(self):
        cat = catalog_all_parallel(1)
        dag = to_dag_sfc(SequentialSfc([1]), ParallelismAnalyzer(cat))
        assert dag.omega == 1
        assert not dag.layer(1).has_merger


class TestRealisticCatalog:
    def test_standard_chain_gets_some_parallelism(self):
        cat = standard_catalog()
        # firewall, dpi, ids, monitor: read-only/drop-only -> parallel-with-merge.
        ids = {cat.name(i): i for i in cat}
        chain = SequentialSfc([ids["firewall"], ids["dpi"], ids["ids"], ids["monitor"]])
        dag = to_dag_sfc(chain, ParallelismAnalyzer(cat))
        assert dag.omega < 4  # at least one pair merged

    def test_conservative_policy_blocks_droppers(self):
        cat = standard_catalog()
        ids = {cat.name(i): i for i in cat}
        chain = SequentialSfc([ids["firewall"], ids["dpi"]])
        an = ParallelismAnalyzer(cat, allow_merge_logic=False)
        dag = to_dag_sfc(chain, an)
        assert dag.omega == 2


class TestValidation:
    def test_bad_max_parallel(self):
        cat = catalog_all_parallel(2)
        with pytest.raises(TransformError):
            to_dag_sfc(SequentialSfc([1, 2]), ParallelismAnalyzer(cat), max_parallel=0)
