"""Tests for the simulated-annealing embedder."""

import pytest

from repro.config import FlowConfig, NetworkConfig, SfcConfig
from repro.embedding.feasibility import verify_embedding
from repro.network.generator import generate_network
from repro.sfc.generator import generate_dag_sfc
from repro.solvers import MbbeEmbedder, MinvEmbedder, RanvEmbedder, SaEmbedder, make_solver


@pytest.fixture(scope="module")
def sa_instance():
    cfg = NetworkConfig(size=40, connectivity=4.5, n_vnf_types=6)
    net = generate_network(cfg, rng=13)
    dag = generate_dag_sfc(SfcConfig(size=4), n_vnf_types=6, rng=14)
    return net, dag


class TestSa:
    def test_valid_and_never_worse_than_start(self, sa_instance):
        net, dag = sa_instance
        minv = MinvEmbedder().embed(net, dag, 0, 39, FlowConfig())
        sa = SaEmbedder(iterations=150).embed(net, dag, 0, 39, FlowConfig(), rng=1)
        assert sa.success
        verify_embedding(net, sa.embedding, FlowConfig())
        assert sa.total_cost <= minv.total_cost + 1e-9
        assert sa.stats["initial_cost"] == pytest.approx(minv.total_cost)

    def test_deterministic_under_seed(self, sa_instance):
        net, dag = sa_instance
        a = SaEmbedder(iterations=100).embed(net, dag, 0, 39, FlowConfig(), rng=5)
        b = SaEmbedder(iterations=100).embed(net, dag, 0, 39, FlowConfig(), rng=5)
        assert a.total_cost == pytest.approx(b.total_cost)

    def test_zero_iterations_returns_base(self, sa_instance):
        net, dag = sa_instance
        sa = SaEmbedder(iterations=0).embed(net, dag, 0, 39, FlowConfig(), rng=1)
        minv = MinvEmbedder().embed(net, dag, 0, 39, FlowConfig())
        assert sa.total_cost == pytest.approx(minv.total_cost)
        assert sa.stats["accepted_moves"] == 0

    def test_more_iterations_never_hurt(self, sa_instance):
        net, dag = sa_instance
        short = SaEmbedder(iterations=30).embed(net, dag, 0, 39, FlowConfig(), rng=3)
        # Same seed, longer run: the best-so-far can only improve.
        long = SaEmbedder(iterations=300).embed(net, dag, 0, 39, FlowConfig(), rng=3)
        assert long.total_cost <= short.total_cost + 1e-9

    def test_custom_base_solver(self, sa_instance):
        net, dag = sa_instance
        sa = SaEmbedder(base=RanvEmbedder(), iterations=50).embed(
            net, dag, 0, 39, FlowConfig(), rng=2
        )
        assert sa.success

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SaEmbedder(iterations=-1)
        with pytest.raises(ValueError):
            SaEmbedder(cooling=0.0)
        with pytest.raises(ValueError):
            SaEmbedder(t0=0.0)

    def test_base_failure_propagates(self, sa_instance):
        net, dag = sa_instance
        r = SaEmbedder().embed(net, dag, 0, 999, FlowConfig(), rng=1)
        assert not r.success

    def test_registered(self):
        assert make_solver("SA").name == "SA"

    def test_mbbe_competitive_with_sa(self, sa_instance):
        """MBBE's structured search should be in SA's quality ballpark
        (within 10 %) at a fraction of the runtime."""
        net, dag = sa_instance
        sa = SaEmbedder(iterations=400).embed(net, dag, 0, 39, FlowConfig(), rng=9)
        mbbe = MbbeEmbedder().embed(net, dag, 0, 39, FlowConfig())
        assert mbbe.total_cost <= 1.10 * sa.total_cost
        assert mbbe.runtime < sa.runtime
