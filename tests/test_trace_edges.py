"""Edge cases of arrival traces and online release semantics.

Covers the corners the happy-path online tests skip: empty traces, the
departures-before-arrivals convention at a shared step, request-id reuse
(overlapping vs. sequential), and releases of unknown ids.
"""

import pytest

from repro.config import FlowConfig, SfcConfig
from repro.exceptions import ConfigurationError, LedgerError
from repro.network.cloud import CloudNetwork
from repro.sfc.builder import DagSfcBuilder
from repro.sim.online import OnlineSimulator, SfcRequest
from repro.sim.trace import ArrivalTrace, TraceEvent, generate_trace, replay
from repro.solvers import MbbeEmbedder

from .conftest import build_line_graph


def tight_network() -> CloudNetwork:
    """0-1-2 line where one unit-rate request saturates everything."""
    net = CloudNetwork(build_line_graph(3, price=1.0, capacity=1.0))
    net.deploy(1, 1, price=5.0, capacity=1.0)
    return net


def request(rid: int) -> SfcRequest:
    dag = DagSfcBuilder().single(1).build()
    return SfcRequest(rid, dag, 0, 2, FlowConfig(rate=1.0))


def event(rid: int, step: int, departure_step: int) -> TraceEvent:
    return TraceEvent(step=step, request=request(rid), departure_step=departure_step)


class TestEmptyTrace:
    def test_direct_empty_trace(self):
        trace = ArrivalTrace(events=(), steps=0)
        assert len(trace) == 0
        assert trace.offered_load == 0.0
        assert trace.departures_by_step() == {}

    def test_zero_arrival_probability_yields_empty(self):
        trace = generate_trace(
            steps=20, n_nodes=5, n_vnf_types=3, sfc=SfcConfig(size=2),
            arrival_probability=0.0, rng=1,
        )
        assert len(trace) == 0
        sim = OnlineSimulator(tight_network(), MbbeEmbedder())
        replay(trace, sim, rng=1)
        st = sim.stats()
        assert (st.arrivals, st.accepted, st.departed) == (0, 0, 0)

    def test_generate_trace_validation(self):
        kw = dict(n_nodes=5, n_vnf_types=3, sfc=SfcConfig(size=2))
        with pytest.raises(ConfigurationError):
            generate_trace(steps=0, **kw)
        with pytest.raises(ConfigurationError):
            generate_trace(steps=5, n_nodes=1, n_vnf_types=3, sfc=SfcConfig(size=2))
        with pytest.raises(ConfigurationError):
            generate_trace(steps=5, arrival_probability=1.5, **kw)
        with pytest.raises(ConfigurationError):
            generate_trace(steps=5, mean_hold=0.5, **kw)

    def test_same_seed_same_trace(self):
        kw = dict(steps=50, n_nodes=8, n_vnf_types=4, sfc=SfcConfig(size=3))
        a = generate_trace(rng=7, **kw)
        b = generate_trace(rng=7, **kw)
        assert [(e.step, e.request.request_id, e.departure_step) for e in a] == [
            (e.step, e.request.request_id, e.departure_step) for e in b
        ]


class TestDepartureOrdering:
    def test_departure_before_arrival_at_same_step(self):
        # Request 1 arrives exactly when request 0 departs; the saturated
        # capacity must be freed *first*, so both are accepted.
        trace = ArrivalTrace(events=(event(0, 0, 5), event(1, 5, 7)), steps=8)
        sim = OnlineSimulator(tight_network(), MbbeEmbedder())
        replay(trace, sim, rng=0)
        st = sim.stats()
        assert st.accepted == 2
        assert st.departed == 2

    def test_overlapping_arrival_is_rejected_not_crashed(self):
        # Request 1 arrives while 0 still holds everything: no capacity.
        trace = ArrivalTrace(events=(event(0, 0, 5), event(1, 3, 7)), steps=8)
        sim = OnlineSimulator(tight_network(), MbbeEmbedder())
        replay(trace, sim, rng=0)
        st = sim.stats()
        assert st.accepted == 1
        # The failed arrival never departs (it held nothing).
        assert st.departed == 1
        assert list(sim.active_requests()) == []


class TestRequestIdReuse:
    def test_duplicate_overlapping_ids_raise(self):
        trace = ArrivalTrace(events=(event(0, 0, 10), event(0, 2, 12)), steps=13)
        sim = OnlineSimulator(tight_network(), MbbeEmbedder())
        with pytest.raises(ConfigurationError, match="already active"):
            replay(trace, sim, rng=0)

    def test_sequential_id_reuse_is_allowed(self):
        # Id 0 departs at step 2, then a fresh request reuses id 0 at step 3.
        trace = ArrivalTrace(events=(event(0, 0, 2), event(0, 3, 5)), steps=6)
        sim = OnlineSimulator(tight_network(), MbbeEmbedder())
        replay(trace, sim, rng=0)
        st = sim.stats()
        assert st.accepted == 2
        assert st.departed == 2


class TestReleaseSemantics:
    def test_release_unknown_id_raises(self):
        sim = OnlineSimulator(tight_network(), MbbeEmbedder())
        with pytest.raises(ConfigurationError, match="not active"):
            sim.release(99)

    def test_double_release_raises_and_keeps_state_clean(self):
        sim = OnlineSimulator(tight_network(), MbbeEmbedder())
        result = sim.submit(request(0), rng=1)
        assert result.success
        sim.release(0)
        with pytest.raises(ConfigurationError, match="not active"):
            sim.release(0)
        # The double release must not have corrupted the residual state.
        assert sim.state.link_used(0, 1) == 0.0
        assert sim.submit(request(1), rng=1).success

    def test_ledger_errors_are_structured(self):
        # The broad ConfigurationError the older tests catch is really a
        # LedgerError carrying machine-readable fields — server paths turn
        # these into typed rejections without parsing the message.
        sim = OnlineSimulator(tight_network(), MbbeEmbedder())
        with pytest.raises(LedgerError) as exc_info:
            sim.release(99)
        assert exc_info.value.request_id == 99
        assert exc_info.value.code == "unknown_request"
        assert isinstance(exc_info.value, ConfigurationError)

        assert sim.submit(request(0), rng=1).success
        with pytest.raises(LedgerError) as exc_info:
            replay(ArrivalTrace(events=(event(0, 0, 5),), steps=6), sim, rng=0)
        assert exc_info.value.request_id == 0
        assert exc_info.value.code == "duplicate_request"
