#!/usr/bin/env python3
"""Geo-distributed VNF marketplace on a Waxman topology.

The paper's deployment model: third-party providers rent VNF instances on
geo-dispersed cloud nodes, links are priced by the telecom underlay. This
example builds a Waxman geographic graph (link price grows with distance),
deploys a marketplace with *regional price zones* (instances in the "core"
region are cheaper but farther from the customer edge), and shows how the
consumer's total bill decomposes for each embedding algorithm.

Run:  python examples/cloud_marketplace.py
"""

import numpy as np

from repro import CloudNetwork, FlowConfig, SfcConfig, generate_dag_sfc, make_solver
from repro.network.topologies import waxman
from repro.types import MERGER_VNF

SEED = 23
N_NODES = 80
N_TYPES = 8


def build_marketplace(rng: np.random.Generator) -> CloudNetwork:
    graph = waxman(N_NODES, rng=rng, alpha=0.7, beta=0.25, price_per_distance=60.0)
    network = CloudNetwork(graph)
    # Price zones: the first third of node ids are "core" datacenters with a
    # 30 % discount; the rest are edge POPs at list price.
    for node in sorted(graph.nodes()):
        discount = 0.7 if node < N_NODES // 3 else 1.0
        for vnf_type in list(range(1, N_TYPES + 1)) + [MERGER_VNF]:
            if rng.random() < 0.5:  # deploying ratio 50 %
                price = float(rng.uniform(90, 110)) * discount
                network.deploy(node, vnf_type, price=price, capacity=8.0)
    return network


def main() -> None:
    rng = np.random.default_rng(SEED)
    network = build_marketplace(rng)
    print(f"marketplace: {network}")
    dag = generate_dag_sfc(SfcConfig(size=6), n_vnf_types=N_TYPES, rng=rng)
    print(f"request: {dag}")

    source, dest = N_NODES - 1, N_NODES - 2  # customer sits at the edge
    print(f"\nconsumer bill breakdown ({source} -> {dest}):")
    print(f"  {'algorithm':10s} {'total':>9s} {'vnf rent':>9s} {'links':>8s} {'hops':>5s}")
    for name in ("RANV", "MINV", "MBBE"):
        r = make_solver(name).embed(network, dag, source, dest, FlowConfig(), rng=SEED)
        if not r.success:
            print(f"  {name:10s} FAILED: {r.reason}")
            continue
        print(
            f"  {name:10s} {r.total_cost:9.2f} {r.cost.vnf_cost:9.2f} "
            f"{r.cost.link_cost:8.2f} {r.embedding.total_hops():5d}"
        )

    # The tension MBBE trades off: cheap core instances vs short edge paths.
    mbbe = make_solver("MBBE").embed(network, dag, source, dest, FlowConfig())
    used_core = sum(1 for v in mbbe.embedding.placements.values() if v < N_NODES // 3)
    total = len(mbbe.embedding.placements)
    print(
        f"\nMBBE rented {used_core}/{total} positions in the discounted core zone — "
        "it buys the discount only when the detour is worth it."
    )


if __name__ == "__main__":
    main()
