#!/usr/bin/env python3
"""Batch admission: does the order you embed requests in matter?

Twenty requests, one capacity-tight network, four admission orders, same
solver (MBBE). Under pressure, packing small/short requests first strands
less capacity — the classic bin-packing intuition, measured.

Run:  python examples/batch_orderings.py
"""

import numpy as np

from repro import FlowConfig, NetworkConfig, SfcConfig, generate_dag_sfc, generate_network, MbbeEmbedder
from repro.sim.batch import ORDERINGS, embed_batch
from repro.sim.online import SfcRequest

SEED = 53


def main() -> None:
    cfg = NetworkConfig(
        size=60, connectivity=4.5, n_vnf_types=8, deploy_ratio=0.3,
        vnf_capacity=2.0, link_capacity=3.0,
    )
    net = generate_network(cfg, rng=SEED)
    rng = np.random.default_rng(SEED + 1)
    requests = []
    for i in range(20):
        size = int(rng.integers(2, 7))
        dag = generate_dag_sfc(SfcConfig(size=size), n_vnf_types=8, rng=rng)
        src, dst = (int(v) for v in rng.choice(cfg.size, size=2, replace=False))
        requests.append(SfcRequest(i, dag, src, dst, FlowConfig(rate=1.0)))

    print(f"batch of {len(requests)} requests on a tight 60-node cloud (MBBE):")
    print(f"  {'ordering':16s} {'accepted':>9s} {'total cost':>11s}")
    for name in sorted(ORDERINGS):
        out = embed_batch(net, requests, MbbeEmbedder(), ordering=name)
        print(
            f"  {name:16s} {len(out.accepted_ids):>6d}/20 {out.total_cost:>11.1f}"
        )


if __name__ == "__main__":
    main()
