#!/usr/bin/env python3
"""Profile one full simulation trial (guide workflow: measure first).

Runs a Table-2-scale trial (network generation + four solvers) under
cProfile and prints the top hot spots by cumulative time. Useful before
touching any "optimization": historically the profile is dominated by
network generation and Dijkstra — not by the search logic.

Run:  python examples/profile_trial.py
"""

import cProfile
import pstats

from repro.config import table2_defaults
from repro.sim.figures import default_solvers
from repro.sim.runner import run_trial


def trial() -> None:
    run_trial(table2_defaults(), default_solvers(), seed=42, x=0, trial=0)


def main() -> None:
    profiler = cProfile.Profile()
    profiler.enable()
    trial()
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    print("top 15 by cumulative time:")
    stats.print_stats(15)


if __name__ == "__main__":
    main()
