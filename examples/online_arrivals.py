#!/usr/bin/env python3
"""Online request arrivals: acceptance ratio under load, per algorithm.

A provider-side view the paper's single-flow model feeds into: SFC
requests arrive over time (geometric inter-arrivals), hold their resources
for a random number of steps, then depart. Each algorithm runs the same
arrival trace against its own copy of the network. Cost-aware embedding
(MBBE) keeps real-paths short, so under load it not only bills less per
request — it also leaves more bandwidth for future arrivals and accepts
more of them.

Run:  python examples/online_arrivals.py
"""

import numpy as np

from repro import FlowConfig, NetworkConfig, SfcConfig, generate_dag_sfc, generate_network, make_solver
from repro.sim.online import OnlineSimulator, SfcRequest

SEED = 41
STEPS = 300
ARRIVAL_P = 0.5  # arrival probability per step
MEAN_HOLD = 60  # steps a request stays embedded


def run_trace(solver_name: str) -> tuple[float, float]:
    rng = np.random.default_rng(SEED)  # same trace for every algorithm
    cfg = NetworkConfig(
        size=80, connectivity=5.0, n_vnf_types=8, deploy_ratio=0.4,
        vnf_capacity=4.0, link_capacity=4.0,
    )
    network = generate_network(cfg, rng=7)
    sim = OnlineSimulator(network, make_solver(solver_name))

    departures: dict[int, list[int]] = {}
    next_id = 0
    for step in range(STEPS):
        for rid in departures.pop(step, []):
            sim.release(rid)
        if rng.random() < ARRIVAL_P:
            dag = generate_dag_sfc(SfcConfig(size=4), n_vnf_types=8, rng=rng)
            src, dst = (int(v) for v in rng.choice(cfg.size, size=2, replace=False))
            req = SfcRequest(next_id, dag, src, dst, FlowConfig(rate=1.0))
            result = sim.submit(req, rng=int(rng.integers(2**31)))
            if result.success:
                hold = 1 + int(rng.geometric(1.0 / MEAN_HOLD))
                departures.setdefault(step + hold, []).append(next_id)
            next_id += 1
    stats = sim.stats()
    mean_cost = stats.total_cost_accepted / stats.accepted if stats.accepted else 0.0
    return stats.acceptance_ratio, mean_cost


def main() -> None:
    print(f"online arrivals: {STEPS} steps, p(arrival)={ARRIVAL_P}, mean hold {MEAN_HOLD}")
    print(f"  {'algorithm':10s} {'acceptance':>10s} {'mean cost':>10s}")
    ratios = {}
    for name in ("RANV", "MINV", "MBBE"):
        ratio, cost = run_trace(name)
        ratios[name] = ratio
        print(f"  {name:10s} {ratio:10.1%} {cost:10.1f}")
    assert ratios["MBBE"] >= ratios["MINV"] - 0.02, "MBBE should pack at least as well"


if __name__ == "__main__":
    main()
