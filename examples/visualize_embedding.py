#!/usr/bin/env python3
"""Export DOT visualizations of a DAG-SFC and its embedding.

Writes three Graphviz files next to this script (render with
``dot -Tsvg <file>`` or any online DOT viewer):

* ``dag.dot``       — the logical Fig. 2 DAG-SFC (layers, mergers, meta-paths);
* ``network.dot``   — the cloud network with hosted-VNF labels;
* ``embedding.dot`` — the MBBE solution overlaid on the network.

Run:  python examples/visualize_embedding.py
"""

import pathlib

from repro import DagSfcBuilder, FlowConfig, NetworkConfig, generate_network, make_solver
from repro.viz.dot import dag_to_dot, embedding_to_dot, network_to_dot

OUT = pathlib.Path(__file__).resolve().parent / "results"


def main() -> None:
    OUT.mkdir(exist_ok=True)
    # The Fig. 2 DAG-SFC: f1 | {f2..f5}+merger | {f6,f7}+merger.
    dag = DagSfcBuilder().single(1).parallel(2, 3, 4, 5).parallel(6, 7).build()
    net = generate_network(
        NetworkConfig(size=24, connectivity=4.0, n_vnf_types=7, deploy_ratio=0.6),
        rng=6,
    )
    result = make_solver("MBBE").embed(net, dag, 0, 23, FlowConfig())
    if not result.success:
        raise SystemExit(f"embedding failed: {result.reason}")

    (OUT / "dag.dot").write_text(dag_to_dot(dag))
    (OUT / "network.dot").write_text(network_to_dot(net))
    (OUT / "embedding.dot").write_text(embedding_to_dot(net, result.embedding))
    print(f"cost {result.total_cost:.1f}; DOT files in {OUT}/")
    for f in ("dag.dot", "network.dot", "embedding.dot"):
        print(f"  dot -Tsvg {OUT / f} > {f.replace('.dot', '.svg')}")


if __name__ == "__main__":
    main()
