#!/usr/bin/env python3
"""Hybrid (DAG) vs traditional sequential embedding: the Fig. 1 trade-off.

The paper's pitch: hybrid SFCs buy *latency* through VNF parallelism. The
flip side it doesn't dwell on: the standardized DAG form rents extra
mergers and duplicates inner-layer traffic. This example puts numbers on
both sides by embedding the same service twice —

* as a serial chain with the exact layered-graph DP (`CHAIN-DP`, the
  traditional sequential-SFC method), and
* as a DAG-SFC with MBBE,

then comparing rental cost, link cost and end-to-end delay.

Run:  python examples/hybrid_vs_sequential.py
"""

import numpy as np

from repro import FlowConfig, NetworkConfig, SfcConfig, generate_dag_sfc, generate_network, make_solver
from repro.analysis.delay import DelayModel, dag_delay

SEED = 47
TRIALS = 20


def main() -> None:
    cfg = NetworkConfig(size=120, connectivity=5.0, n_vnf_types=10)
    # NF processing dominates intra-datacenter hops (NFP's premise): a DPI
    # pass costs ~1 ms, a hop ~0.05 ms. With hop-dominated delays the
    # parallelism gain would drown in the merger detours.
    model = DelayModel(per_hop_delay=0.05, default_processing_delay=1.0, merger_delay=0.05)
    rows = []
    rng = np.random.default_rng(SEED)
    for t in range(TRIALS):
        net = generate_network(cfg, rng=rng)
        dag = generate_dag_sfc(SfcConfig(size=6), n_vnf_types=10, rng=rng)
        src, dst = (int(v) for v in rng.choice(cfg.size, size=2, replace=False))
        serial = make_solver("CHAIN-DP").embed(net, dag, src, dst, FlowConfig())
        hybrid = make_solver("MBBE").embed(net, dag, src, dst, FlowConfig())
        if not (serial.success and hybrid.success):
            continue
        rows.append(
            (
                serial.total_cost,
                hybrid.total_cost,
                dag_delay(serial.embedding, model),  # serial DAG: no overlap
                dag_delay(hybrid.embedding, model),
            )
        )

    n = len(rows)
    s_cost = sum(r[0] for r in rows) / n
    h_cost = sum(r[1] for r in rows) / n
    s_delay = sum(r[2] for r in rows) / n
    h_delay = sum(r[3] for r in rows) / n

    print(f"6-VNF service, {n} instances, 120-node cloud (means):")
    print(f"  {'':12s} {'cost':>10s} {'delay (ms)':>11s}")
    print(f"  {'sequential':12s} {s_cost:10.1f} {s_delay:11.2f}")
    print(f"  {'hybrid DAG':12s} {h_cost:10.1f} {h_delay:11.2f}")
    print(
        f"\nthe hybrid embedding pays {h_cost / s_cost - 1:+.0%} cost "
        f"(mergers + inner-layer traffic) to cut delay by {1 - h_delay / s_delay:.0%} —"
        "\nexactly the trade the paper's Fig. 1 motivates."
    )
    assert h_delay < s_delay, "parallel branches must overlap"


if __name__ == "__main__":
    main()
