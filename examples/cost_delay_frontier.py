#!/usr/bin/env python3
"""Sweep the cost/latency trade-off for one service (bicriteria extension).

λ = 0 is the paper's pure cost minimization; raising λ re-prices links
toward hop counts, trading rental/link money for latency. Prints the
non-dominated solutions and an ASCII scatter of the frontier.

Run:  python examples/cost_delay_frontier.py
"""

from repro import MbbeEmbedder, NetworkConfig, SfcConfig, generate_dag_sfc, generate_network
from repro.analysis.delay import DelayModel
from repro.analysis.tradeoff import cost_delay_frontier
from repro.sim.ascii_chart import line_chart

SEED = 17


def main() -> None:
    # Cheap links + strongly fluctuating rentals: the cost optimum happily
    # detours across the network to reach bargain instances, so latency
    # and money genuinely pull apart.
    net = generate_network(
        NetworkConfig(
            size=120, connectivity=5.0, n_vnf_types=10,
            price_ratio=0.02, vnf_price_fluctuation=0.5, deploy_ratio=0.25,
        ),
        rng=SEED,
    )
    dag = generate_dag_sfc(SfcConfig(size=6), n_vnf_types=10, rng=SEED + 1)
    model = DelayModel(per_hop_delay=0.5, default_processing_delay=0.3)

    # A hop must "cost" on the order of a rental to move the needle: MBBE's
    # ring search is locality-biased, so only a strong delay weight makes it
    # trade bargain instances for shorter layers.
    front = cost_delay_frontier(
        net, dag, 0, 119, MbbeEmbedder(),
        delay_model=model,
        lambdas=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
        delay_weight=100.0,
    )
    print(f"{'lambda':>7s} {'cost':>9s} {'delay (ms)':>11s}")
    for p in front:
        print(f"{p.lam:>7.2f} {p.cost:>9.1f} {p.delay:>11.2f}")

    if len(front) > 1:
        print()
        print(
            line_chart(
                {"frontier": [(p.cost, p.delay) for p in front]},
                title="cost vs delay (non-dominated MBBE solutions)",
                x_label="total cost",
                y_label="delay",
                height=10,
            )
        )
    cheapest, fastest = front[0], front[-1]
    if cheapest is not fastest:
        print(
            f"\npaying {fastest.cost / cheapest.cost - 1:+.0%} buys "
            f"{1 - fastest.delay / cheapest.delay:.0%} lower latency."
        )


if __name__ == "__main__":
    main()
