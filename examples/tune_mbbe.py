#!/usr/bin/env python3
"""Tune MBBE's budgets with the sensitivity sweep.

Factorial sweep over (x_d, candidate_cap, merger_cap) on paper-style
instances; prints every configuration, the cost/runtime Pareto front, and
the recommendation under a 50 ms budget — the procedure behind this
library's defaults (x_d=4, candidate_cap=4, merger_cap=6).

Run:  python examples/tune_mbbe.py
"""

from repro.config import NetworkConfig, ScenarioConfig, SfcConfig
from repro.sim.sensitivity import pareto_front, recommend, sweep_knobs


def main() -> None:
    scenario = ScenarioConfig(
        network=NetworkConfig(size=150, connectivity=6.0, n_vnf_types=12),
        sfc=SfcConfig(size=5),
    )
    grid = {
        "x_d": [1, 2, 4, 8],
        "candidate_cap": [2, 4],
        "merger_cap": [2, 6],
    }
    print(f"sweeping {4 * 2 * 2} MBBE configurations x 5 paired instances…")
    points = sweep_knobs(scenario, grid, trials=5, master_seed=2018)

    print(f"\n{'configuration':42s} {'cost':>8s} {'runtime':>9s}")
    for p in sorted(points, key=lambda p: p.mean_cost):
        print(f"{p.label():42s} {p.mean_cost:8.1f} {p.mean_runtime * 1e3:7.1f}ms")

    front = pareto_front(points)
    print("\ncost/runtime Pareto front:")
    for p in front:
        print(f"  {p.label():40s} cost {p.mean_cost:7.1f} @ {p.mean_runtime * 1e3:6.1f} ms")

    budget = 0.05
    best = recommend(points, runtime_budget=budget)
    print(f"\nrecommended under a {budget * 1e3:.0f} ms budget: {best.label()}")
    print(f"  mean cost {best.mean_cost:.1f}, mean runtime {best.mean_runtime * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
