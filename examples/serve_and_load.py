#!/usr/bin/env python3
"""The embedding service end to end, in one process.

Starts a real `EmbeddingServer` on an ephemeral loopback port, connects the
real async client, and drives it with an open-loop replay of a generated
arrival trace — the same moving parts `dag-sfc serve` / `dag-sfc loadgen`
wire up across two processes (see docs/serving.md). Along the way it
snapshots the server's state, restarts a second server from the snapshot,
and shows that the restored residual capacity is identical.

Run:  python examples/serve_and_load.py
"""

import asyncio

from repro import NetworkConfig, SfcConfig, generate_network
from repro.service import (
    EmbeddingServer,
    ServiceClient,
    ServiceConfig,
    load_snapshot,
)
from repro.service.loadgen import run_load
from repro.engine.state_store import snapshot_to_dict
from repro.sim.trace import generate_trace

SEED = 23
SNAPSHOT = "service_snapshot_example.json"


async def main() -> None:
    cfg = NetworkConfig(
        size=60, connectivity=5.0, n_vnf_types=8, deploy_ratio=0.4,
        vnf_capacity=4.0, link_capacity=4.0,
    )
    network = generate_network(cfg, rng=SEED)
    config = ServiceConfig(
        solver="MBBE", batch_size=8, workers=0, snapshot_path=SNAPSHOT, seed=SEED
    )

    async with EmbeddingServer(network, config) as server:
        host, port = server.address
        print(f"server on {host}:{port} — {config.solver}, strict dispatch")

        async with await ServiceClient.connect(host, port) as client:
            trace = generate_trace(
                steps=120, n_nodes=cfg.size, n_vnf_types=cfg.n_vnf_types,
                sfc=SfcConfig(size=4), arrival_probability=0.5,
                mean_hold=40.0, rng=SEED + 1,
            )
            print(f"replaying {len(trace)} arrivals (open loop, 10 ms/step)\n")
            report = await run_load(
                client, trace, mode="open", tick_s=0.01, release=False,
                rng=SEED + 2,
            )
            print(report.format_table())

            reply = await client.snapshot()
            print(f"\nsnapshot: {reply['active']} active reservations -> {reply['path']}")
        before = snapshot_to_dict(server.ledger, counters={})

    # "Crash", then resume a fresh server from the on-disk snapshot.
    ledger, counters = load_snapshot(SNAPSHOT, network)
    async with EmbeddingServer(network, config, ledger=ledger, counters=counters) as server:
        after = snapshot_to_dict(server.ledger, counters={})
        same = after["reservations"] == before["reservations"]
        print(f"restarted from snapshot: {len(server.ledger)} reservations restored, "
              f"residual state identical: {same}")
        assert same


if __name__ == "__main__":
    asyncio.run(main())
