#!/usr/bin/env python3
"""Quickstart: embed one hybrid SFC into a random cloud network.

Generates a paper-style cloud network (priced VNF instances + priced
links), draws a random 5-VNF DAG-SFC, embeds it with all four §5
algorithms and prints the cost comparison plus the winning solution.

Run:  python examples/quickstart.py
"""

from repro import (
    FlowConfig,
    NetworkConfig,
    SfcConfig,
    generate_dag_sfc,
    generate_network,
    make_solver,
)

SEED = 7


def main() -> None:
    # A 100-node cloud with Table-2 ratios (scaled down for a fast demo).
    net_cfg = NetworkConfig(
        size=100,
        connectivity=6.0,
        n_vnf_types=12,
        deploy_ratio=0.5,
        price_ratio=0.20,
        vnf_price_fluctuation=0.05,
    )
    network = generate_network(net_cfg, rng=SEED)
    print(f"network: {network}")

    # A random DAG-SFC with the paper's structure rule (layers of <= 3).
    dag = generate_dag_sfc(SfcConfig(size=5), n_vnf_types=12, rng=SEED + 1)
    print(f"request: {dag}")

    source, dest = 0, 99
    flow = FlowConfig(size=1.0, rate=1.0)

    results = {}
    for name in ("RANV", "MINV", "BBE", "MBBE"):
        solver = make_solver(name)
        results[name] = solver.embed(network, dag, source, dest, flow, rng=SEED)

    print(f"\nembedding {source} -> {dest}:")
    for name, r in results.items():
        if r.success:
            print(
                f"  {name:5s} total={r.total_cost:9.2f}  "
                f"vnf={r.cost.vnf_cost:8.2f}  link={r.cost.link_cost:7.2f}  "
                f"[{r.runtime * 1e3:6.1f} ms]"
            )
        else:
            print(f"  {name:5s} failed: {r.reason}")

    best = min((r for r in results.values() if r.success), key=lambda r: r.total_cost)
    saving = 1.0 - best.total_cost / results["MINV"].total_cost
    print(f"\nbest solution ({best.solver}, {saving:.0%} cheaper than MINV):")
    print(best.embedding.describe())


if __name__ == "__main__":
    main()
