#!/usr/bin/env python3
"""Robustness under tight capacities: who still finds a solution?

The paper notes that "in all the above simulations, MBBE always results in
a solution while the benchmark algorithms do not". This example provokes
that regime: VNF instances and links get just enough capacity that careless
placement (RANV/MINV piling positions onto the cheapest or a random
instance, or long paths saturating links) starts failing, while MBBE's
capacity-aware search routes around the bottlenecks.

Run:  python examples/capacity_stress.py
"""

import numpy as np

from repro import FlowConfig, NetworkConfig, SfcConfig, generate_dag_sfc, generate_network, make_solver
from repro.utils.rng import trial_seed

TRIALS = 40
SEED = 31


def main() -> None:
    cfg = NetworkConfig(
        size=60,
        connectivity=4.0,
        n_vnf_types=8,
        deploy_ratio=0.2,  # scarce instances
        vnf_capacity=1.0,  # one flow per instance
        link_capacity=2.0,  # two charged uses per link
    )
    flow = FlowConfig(size=1.0, rate=1.0)
    algorithms = ("RANV", "MINV", "MBBE")
    wins: dict[str, int] = {a: 0 for a in algorithms}
    costs: dict[str, list[float]] = {a: [] for a in algorithms}

    for t in range(TRIALS):
        seed = trial_seed(SEED, t)
        rng = np.random.default_rng(seed)
        net = generate_network(cfg, rng)
        dag = generate_dag_sfc(SfcConfig(size=6), n_vnf_types=8, rng=rng)
        src, dst = (int(v) for v in rng.choice(cfg.size, size=2, replace=False))
        for name in algorithms:
            r = make_solver(name).embed(net, dag, src, dst, flow, rng=seed)
            if r.success:
                wins[name] += 1
                costs[name].append(r.total_cost)

    print(f"tight-capacity stress: {TRIALS} trials, 60 nodes, deploy 20 %, cap 1 flow")
    print(f"  {'algorithm':10s} {'success':>8s} {'mean cost (successes)':>24s}")
    for name in algorithms:
        rate = wins[name] / TRIALS
        mean = sum(costs[name]) / len(costs[name]) if costs[name] else float("nan")
        print(f"  {name:10s} {rate:8.0%} {mean:24.1f}")
    assert wins["MBBE"] >= max(wins["RANV"], wins["MINV"]), (
        "MBBE should be at least as robust as the baselines"
    )


if __name__ == "__main__":
    main()
