#!/usr/bin/env python3
"""Reproduce every Fig. 6 sweep and print the tables + ASCII charts.

By default this runs a scaled-down version (5 trials/point, network sizes
multiplied by REPRO_NET_SCALE if set) so it finishes in a few minutes; for
the paper-fidelity run use::

    REPRO_TRIALS=100 REPRO_PARALLEL=8 python examples/figure6_reproduction.py

CSV files with the full statistics are written next to this script.
"""

import os
import pathlib

from repro.sim.ascii_chart import line_chart
from repro.sim.figures import FIGURES, figure_by_id
from repro.sim.metrics import aggregate
from repro.sim.report import series_from_summaries, summaries_to_csv, summary_table
from repro.sim.runner import run_experiment

OUT_DIR = pathlib.Path(__file__).resolve().parent / "results"


def main() -> None:
    OUT_DIR.mkdir(exist_ok=True)
    fig_ids = [fid for fid in ("6a", "6b", "6c", "6d", "6e", "6f")]
    for fid in fig_ids:
        spec = figure_by_id(fid)
        print("=" * 72)
        print(f"Figure {fid}: {spec.title} ({spec.trials} trials/point)")
        records = run_experiment(spec, progress=True)
        summaries = aggregate(records)
        print(summary_table(summaries, x_label=spec.x_label))
        print()
        print(line_chart(series_from_summaries(summaries), x_label=spec.x_label))
        csv_path = OUT_DIR / f"fig{fid}.csv"
        csv_path.write_text(summaries_to_csv(summaries))
        print(f"[csv] {csv_path}")
        print()


if __name__ == "__main__":
    main()
