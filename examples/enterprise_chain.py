#!/usr/bin/env python3
"""Enterprise security chain: from sequential SFC to embedded hybrid SFC.

The end-to-end story of the paper's Figs. 1–2 on a realistic middlebox
chain:

1. an enterprise orders the sequential chain
   firewall → DPI → IDS → monitor → NAT → shaper;
2. the NFP-style parallelism analysis finds which adjacent functions are
   order-independent and standardizes the chain into a layered DAG-SFC;
3. the DAG-SFC is embedded into a cloud network with MBBE;
4. the latency extension quantifies the parallelism pay-off against the
   sequential counterfactual on the *same* placements.

Run:  python examples/enterprise_chain.py
"""

from repro import (
    FlowConfig,
    NetworkConfig,
    SequentialSfc,
    generate_network,
    make_solver,
    standard_catalog,
    to_dag_sfc,
)
from repro.analysis.delay import DelayModel, dag_delay, sequentialized_delay
from repro.nfv.parallelism import ParallelismAnalyzer

SEED = 11


def main() -> None:
    catalog = standard_catalog()
    by_name = {catalog.name(i): i for i in catalog}
    chain = SequentialSfc(
        [
            by_name["firewall"],
            by_name["dpi"],
            by_name["ids"],
            by_name["monitor"],
            by_name["nat"],
            by_name["shaper"],
        ]
    )
    print("ordered chain :", " -> ".join(catalog.name(v) for v in chain))

    analyzer = ParallelismAnalyzer(catalog, allow_merge_logic=True)
    print(f"catalog parallelizable pair fraction: {analyzer.parallel_fraction():.1%}")

    dag = to_dag_sfc(chain, analyzer, max_parallel=3)
    print("standardized DAG-SFC:")
    for l, layer in enumerate(dag.layers, start=1):
        names = ", ".join(catalog.name(v) for v in layer.parallel)
        merger = " + merger" if layer.has_merger else ""
        print(f"  L{l}: {{{names}}}{merger}")

    net_cfg = NetworkConfig(size=120, connectivity=5.0, n_vnf_types=len(catalog))
    network = generate_network(net_cfg, rng=SEED)
    result = make_solver("MBBE").embed(network, dag, 3, 117, FlowConfig())
    if not result.success:
        print("embedding failed:", result.reason)
        return
    print(
        f"\nMBBE embedding cost: {result.total_cost:.2f} "
        f"(vnf {result.cost.vnf_cost:.2f} + link {result.cost.link_cost:.2f})"
    )

    model = DelayModel(catalog=catalog, per_hop_delay=1.0)
    hybrid = dag_delay(result.embedding, model)
    serial = sequentialized_delay(result.embedding, model)
    print(f"end-to-end delay hybrid: {hybrid:.2f} ms")
    print(f"end-to-end delay if sequential: {serial:.2f} ms")
    print(f"parallelism speed-up: {serial / hybrid:.2f}x")


if __name__ == "__main__":
    main()
